"""GNMT proxy model for the accuracy experiments.

A small recurrent sequence model (embedding, stacked LSTM, output projection)
standing in for GNMT's LSTM encoder-decoder.  Its prunable weights are the
LSTM gate matrices and the output projection — the GEMMs the paper prunes in
the real GNMT — and it is evaluated with BLEU on the synthetic translation
task, which is what Figure 2's accuracy-speedup trade-off needs.
"""

from __future__ import annotations

import numpy as np

from ..nn.data import Batch
from ..nn.functional import cross_entropy
from ..nn.layers import Embedding, LSTM, Linear, Module
from ..nn.metrics import bleu_score
from ..nn.tensor import Tensor, no_grad

__all__ = ["GNMTConfig", "GNMTProxy"]


class GNMTConfig:
    """Hyper-parameters of the proxy GNMT model."""

    def __init__(
        self,
        vocab_size: int = 16,
        embed_dim: int = 64,
        hidden_size: int = 128,
        num_layers: int = 2,
        seed: int = 0,
    ):
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.seed = seed


class GNMTProxy(Module):
    """Stacked-LSTM sequence transducer (GNMT stand-in)."""

    metric_name = "BLEU"

    def __init__(self, config: GNMTConfig | None = None):
        super().__init__()
        self.config = config or GNMTConfig()
        rng = np.random.default_rng(self.config.seed)
        self.embedding = Embedding(self.config.vocab_size, self.config.embed_dim, rng=rng)
        self.lstms = []
        input_size = self.config.embed_dim
        for idx in range(self.config.num_layers):
            lstm = LSTM(input_size, self.config.hidden_size, rng=rng)
            self.lstms.append(lstm)
            setattr(self, f"lstm{idx}", lstm)
            input_size = self.config.hidden_size
        self.output = Linear(self.config.hidden_size, self.config.vocab_size, rng=rng)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        x = self.embedding(np.asarray(token_ids, dtype=np.int64))
        for lstm in self.lstms:
            x, _ = lstm(x)
        return self.output(x)

    def loss(self, batch: Batch) -> Tensor:
        logits = self.forward(batch.inputs)
        return cross_entropy(logits, batch.targets)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        with no_grad():
            logits = self.forward(inputs)
        return logits.data.argmax(axis=-1)

    def evaluate(self, batch: Batch) -> float:
        """Corpus BLEU of the predicted sequences against the targets."""
        predictions = self.predict(batch.inputs)
        return bleu_score(batch.targets, predictions)
