"""Transformer proxy model for the accuracy experiments.

A small encoder-only Transformer (embedding, sinusoidal positions, N blocks of
multi-head self-attention + feed-forward, output projection) trained on the
synthetic translation task of :mod:`repro.nn.data`.  Its prunable weights are
the attention projections and the FFN matrices — the same layer family the
paper prunes in the real Transformer — and it is evaluated with BLEU, so the
pattern-vs-accuracy comparisons of Table 1 / Figure 2 can be reproduced at
proxy scale.
"""

from __future__ import annotations

import numpy as np

from ..nn.data import Batch
from ..nn.functional import cross_entropy
from ..nn.layers import (
    Embedding,
    LayerNorm,
    Linear,
    Module,
    MultiHeadSelfAttention,
)
from ..nn.metrics import bleu_score
from ..nn.tensor import Tensor, no_grad

__all__ = ["TransformerConfig", "TransformerBlock", "TransformerProxy"]


class TransformerConfig:
    """Hyper-parameters of the proxy Transformer.

    The defaults (d_model=128, d_ff=512, 2 blocks, 4 heads) keep every
    prunable matrix divisible by the proxy vector sizes used in the accuracy
    experiments while training in seconds on CPU.
    """

    def __init__(
        self,
        vocab_size: int = 16,
        d_model: int = 128,
        d_ff: int = 512,
        num_layers: int = 2,
        num_heads: int = 4,
        max_len: int = 64,
        position_scale: float = 0.3,
        seed: int = 0,
    ):
        if d_model % num_heads:
            raise ValueError("d_model must be divisible by num_heads")
        self.vocab_size = vocab_size
        self.d_model = d_model
        self.d_ff = d_ff
        self.num_layers = num_layers
        self.num_heads = num_heads
        self.max_len = max_len
        # Keep the positional signal smaller than the token embeddings so the
        # token identity is not swamped early in training (tiny proxy models
        # are sensitive to this balance).
        self.position_scale = position_scale
        self.seed = seed


def sinusoidal_positions(max_len: int, dim: int) -> np.ndarray:
    """Standard sinusoidal position encodings of shape ``(max_len, dim)``."""
    positions = np.arange(max_len)[:, None]
    dims = np.arange(dim)[None, :]
    angle_rates = 1.0 / np.power(10000.0, (2 * (dims // 2)) / dim)
    angles = positions * angle_rates
    encoding = np.zeros((max_len, dim))
    encoding[:, 0::2] = np.sin(angles[:, 0::2])
    encoding[:, 1::2] = np.cos(angles[:, 1::2])
    return encoding


class TransformerBlock(Module):
    """Pre-norm Transformer encoder block (self-attention + FFN)."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.attn_norm = LayerNorm(config.d_model)
        self.attn = MultiHeadSelfAttention(config.d_model, config.num_heads, rng=rng)
        self.ffn_norm = LayerNorm(config.d_model)
        self.ffn1 = Linear(config.d_model, config.d_ff, rng=rng)
        self.ffn2 = Linear(config.d_ff, config.d_model, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.attn_norm(x))
        hidden = self.ffn1(self.ffn_norm(x)).relu()
        return x + self.ffn2(hidden)


class TransformerProxy(Module):
    """Encoder-only Transformer for per-position sequence transduction."""

    #: Metric name reported by :meth:`evaluate` (matches the paper's column).
    metric_name = "BLEU"

    def __init__(self, config: TransformerConfig | None = None):
        super().__init__()
        self.config = config or TransformerConfig()
        rng = np.random.default_rng(self.config.seed)
        self.embedding = Embedding(self.config.vocab_size, self.config.d_model, rng=rng)
        self.embedding.weight.data = rng.normal(
            0.0, 1.0, size=self.embedding.weight.shape
        )
        self.positions = (
            sinusoidal_positions(self.config.max_len, self.config.d_model)
            * self.config.position_scale
        )
        self.blocks = [TransformerBlock(self.config, rng) for _ in range(self.config.num_layers)]
        for idx, block in enumerate(self.blocks):
            setattr(self, f"block{idx}", block)
        self.final_norm = LayerNorm(self.config.d_model)
        self.output = Linear(self.config.d_model, self.config.vocab_size, rng=rng)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        _, seq = token_ids.shape
        if seq > self.config.max_len:
            raise ValueError(f"sequence length {seq} exceeds max_len {self.config.max_len}")
        x = self.embedding(token_ids) + Tensor(self.positions[:seq])
        for block in self.blocks:
            x = block(x)
        return self.output(self.final_norm(x))

    # ------------------------------------------------------------------ #
    # Training / evaluation interface used by repro.nn.train
    # ------------------------------------------------------------------ #
    def loss(self, batch: Batch) -> Tensor:
        logits = self.forward(batch.inputs)
        return cross_entropy(logits, batch.targets)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        with no_grad():
            logits = self.forward(inputs)
        return logits.data.argmax(axis=-1)

    def evaluate(self, batch: Batch) -> float:
        """Corpus BLEU of the predicted sequences against the targets."""
        predictions = self.predict(batch.inputs)
        return bleu_score(batch.targets, predictions)
