"""``python -m repro.serve`` — serve a tuning plan over stdin or a TCP port.

The line protocol is JSONL in both transports: one request object per line
(``{"id": ..., "layer": ..., "activations": [[...], ...]}``, activations as
a ``K x n`` column block or a flat length-``K`` vector, plus an optional
``deadline_ms`` after which the request is shed instead of served) and one
response object per line (``{"id", "layer", "status", "output", "width",
"latency_ms"}`` on success; ``status: "rejected"`` with an ``error`` when
backpressure sheds the request, ``status: "error"`` for malformed input or
a structured serving failure — executor error, quarantined batch, expired
deadline).  A malformed line *never* tears down the loop or the
connection: garbage bytes, truncated JSON and unknown layers all produce
one error reply and the stream continues.

``--stdin-jsonl`` reads every request from stdin, serves them, and prints
the responses in input order.  ``--port`` runs a threaded TCP server with
the same per-line protocol; concurrent connections coalesce into shared
micro-batches, and the literal line ``/health`` (or ``{"op": "health"}``)
answers with a one-line stats snapshot (served/rejected/retried/
quarantined/expired/degraded counters, latency percentiles, worker count).
``--replay`` switches the stdin mode onto the deterministic offline path
(byte-identical at any ``--workers`` count).
"""

from __future__ import annotations

import argparse
import json
import socketserver
import sys

from ..tune.planner import Autotuner
from .cells import PredictRequest
from .service import (
    DEFAULT_WEIGHT_SEED,
    InferenceService,
    ServiceOverloadedError,
)

__all__ = ["main", "build_parser", "load_service"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve predict() requests through a tuning plan.",
    )
    workload = parser.add_mutually_exclusive_group(required=True)
    workload.add_argument(
        "--model",
        help="named workload to plan and serve (transformer/gnmt/resnet50)",
    )
    workload.add_argument(
        "--gemm",
        nargs=3,
        type=int,
        metavar=("M", "N", "K"),
        help="explicit GEMM problem to plan and serve",
    )
    parser.add_argument("--gpu", default="V100", help="target GPU architecture")
    parser.add_argument(
        "--sparsity", type=float, default=0.9, help="weight sparsity of the plan"
    )
    parser.add_argument(
        "--plan-dir",
        default=None,
        help="persistent plan-cache directory (plans are tuned on miss)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = execute inline on the dispatcher)",
    )
    parser.add_argument(
        "--width",
        type=int,
        default=None,
        help="force one coalescing width (default: timing-model argmax)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="force the coalescing deadline (default: calibrated batch time)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="queue bound in coalesced columns before requests are rejected",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="worker crashes per batch before it is quarantined (default 2)",
    )
    parser.add_argument(
        "--hang-timeout-s",
        type=float,
        default=30.0,
        help="declare a silent worker dead after this long (default 30)",
    )
    parser.add_argument(
        "--weight-seed",
        type=int,
        default=DEFAULT_WEIGHT_SEED,
        help="seed of the derived pruned weights",
    )
    transport = parser.add_mutually_exclusive_group(required=True)
    transport.add_argument(
        "--stdin-jsonl",
        action="store_true",
        help="serve one JSONL request per stdin line, respond on stdout",
    )
    transport.add_argument(
        "--port", type=int, default=None, help="serve the JSONL protocol over TCP"
    )
    parser.add_argument(
        "--replay",
        action="store_true",
        help="with --stdin-jsonl: deterministic offline path "
        "(byte-identical at any worker count)",
    )
    return parser


def load_service(args: argparse.Namespace) -> InferenceService:
    """Tune (or load from ``--plan-dir``) the plan and build the service."""
    tuner = Autotuner(cache_dir=args.plan_dir)
    if args.model is not None:
        plan = tuner.plan(args.model, args.gpu, args.sparsity)
    else:
        plan = tuner.plan_gemm(tuple(args.gemm), args.gpu, args.sparsity)
    return InferenceService(
        plan,
        weight_seed=args.weight_seed,
        workers=args.workers,
        width=args.width,
        deadline_s=None if args.deadline_ms is None else args.deadline_ms / 1e3,
        max_pending=args.max_pending,
        max_retries=args.max_retries,
        hang_timeout_s=args.hang_timeout_s,
    )


def _parse_request(line: str, fallback_layer: str) -> PredictRequest:
    """One JSONL line as a :class:`PredictRequest` (raises ``ValueError``).

    Every malformed payload — garbage bytes, truncated JSON, non-numeric
    or ragged activations, a bad deadline — surfaces as ``ValueError`` so
    the transports can answer with one structured error line and keep the
    stream alive.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed JSON: {exc}") from exc
    if not isinstance(payload, dict) or "activations" not in payload:
        raise ValueError("request object needs an 'activations' field")
    import numpy as np

    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None and not isinstance(deadline_ms, (int, float)):
        raise ValueError("'deadline_ms' must be a number")
    try:
        activations = np.asarray(payload["activations"], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"activations are not a numeric matrix: {exc}") from exc
    return PredictRequest.from_array(
        str(payload.get("layer", fallback_layer)),
        activations,
        request_id=None if payload.get("id") is None else str(payload["id"]),
        deadline_s=None if deadline_ms is None else float(deadline_ms) / 1e3,
    )


def _error_line(line: str, status: str, error: str) -> str:
    """A JSONL error/rejection response echoing the request id if present."""
    request_id = None
    try:
        payload = json.loads(line)
        if isinstance(payload, dict):
            request_id = payload.get("id")
    except json.JSONDecodeError:
        pass
    return json.dumps({"id": request_id, "status": status, "error": error})


def _health_line(service: InferenceService) -> str:
    """One JSON line summarising the live service (the ``/health`` reply)."""
    return json.dumps(
        {
            "status": "ok",
            "op": "health",
            "workers": service.workers,
            "layers": sorted(service.windows),
            "stats": service.stats.to_dict(),
        }
    )


def _is_health_probe(line: str) -> bool:
    """True for the ``/health`` literal or a ``{"op": "health"}`` payload."""
    if line.strip() == "/health":
        return True
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return False
    return isinstance(payload, dict) and payload.get("op") == "health"


def _default_layer(service: InferenceService) -> str:
    """The layer a request may omit: single-layer plans have one obvious
    target (the gemm mode); multi-layer plans require an explicit layer."""
    layers = sorted(service.windows)
    return layers[0] if len(layers) == 1 else ""


def _serve_stdin(service: InferenceService, *, replay: bool) -> int:
    """The ``--stdin-jsonl`` transport: all requests in, all responses out."""
    fallback = _default_layer(service)
    lines = [line for line in sys.stdin.read().splitlines() if line.strip()]
    slots: list[str | None] = [None] * len(lines)
    requests: list[tuple[int, PredictRequest]] = []
    for index, line in enumerate(lines):
        try:
            request = _parse_request(line, fallback)
            service.validate(request)
            requests.append((index, request))
        except Exception as exc:
            slots[index] = _error_line(line, "error", str(exc))
    if replay:
        responses = service.replay(
            [request for _, request in requests],
            jobs=max(1, service.workers),
        )
        for (index, _), response in zip(requests, responses, strict=True):
            slots[index] = json.dumps(response.to_dict())
    else:
        with service:
            pending = []
            for index, request in requests:
                try:
                    pending.append((index, service.submit(request)))
                except ServiceOverloadedError as exc:
                    slots[index] = _error_line(lines[index], "rejected", str(exc))
                except Exception as exc:
                    slots[index] = _error_line(lines[index], "error", str(exc))
            for index, handle in pending:
                response = handle.result()
                slots[index] = json.dumps(response.to_dict())
    for slot in slots:
        assert slot is not None
        print(slot)
    return 0


def _serve_port(service: InferenceService, port: int) -> int:
    """The ``--port`` transport: a threaded line-per-request TCP server."""
    fallback = _default_layer(service)

    class Handler(socketserver.StreamRequestHandler):
        """One connection: JSONL request lines in, response lines out.

        Any per-line failure — malformed payload, unknown layer,
        backpressure, even an unexpected serving exception — is answered
        with one structured error line; only a dead socket ends the loop.
        """

        def handle(self) -> None:
            """Serve one client: a response line per request line."""
            for raw in self.rfile:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                if _is_health_probe(line):
                    reply = _health_line(service)
                else:
                    try:
                        request = _parse_request(line, fallback)
                        response = service.predict(request)
                        reply = json.dumps(response.to_dict())
                    except ServiceOverloadedError as exc:
                        reply = _error_line(line, "rejected", str(exc))
                    except Exception as exc:
                        reply = _error_line(line, "error", str(exc))
                try:
                    self.wfile.write((reply + "\n").encode("utf-8"))
                    self.wfile.flush()
                except (BrokenPipeError, OSError):
                    return  # client went away; the server keeps serving

    class Server(socketserver.ThreadingTCPServer):
        """Threaded so concurrent connections share the micro-batcher."""

        allow_reuse_address = True
        daemon_threads = True

    with service, Server(("127.0.0.1", port), Handler) as server:
        host, bound_port = server.server_address
        print(f"serving on {host}:{bound_port}", file=sys.stderr, flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    service = load_service(args)
    if args.stdin_jsonl:
        return _serve_stdin(service, replay=args.replay)
    return _serve_port(service, args.port)
