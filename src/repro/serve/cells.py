"""The serving cell family: requests, micro-batches and their pure executor.

Serving rides on the same cell discipline as every sweep in this repo: a
:class:`ServeBatch` is a hashable, canonically-serialisable config — the
tuning plan, the weight seed, the target layer and the coalesced requests —
and :func:`execute_serve_batches` is a *pure* function of it (the
:class:`~repro.eval.runner.CellTask` entry point, so the ``SC001`` purity
gate covers the whole serving hot path).  Purity is what makes the service's
headline guarantee cheap: serial and multi-worker runs over the same batch
stream produce byte-identical outputs, because the executor only ever
decides *where* a batch is computed, never what it computes.

One caveat is load-bearing enough to state here: outputs are a pure function
of the batch *composition*, not of each request alone.  Coalescing a
request's columns next to different neighbours changes the BLAS blocking and
therefore the float rounding (measurably, at the last ulp), so byte-identity
holds whenever batch composition is deterministic — the replay path and any
fixed batch stream — while live deadline-based batching trades that for
bounded latency.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from ..eval.runner import MODEL_VERSION, CellTask, canonical_config_hash
from ..tune.planned import PlannedModel
from ..tune.planner import TuningPlan
from .weights import planned_runtime

__all__ = [
    "PredictRequest",
    "PredictResponse",
    "ServeBatch",
    "ServeBatchRecord",
    "SERVE_TASK",
    "execute_serve_batches",
]


@dataclass(frozen=True)
class PredictRequest:
    """One inference request: activation columns for one layer of the plan.

    ``activations`` is the dense operand slice the request contributes —
    ``K`` rows by ``n`` columns, stored as nested tuples so the request is
    immutable and canonically JSON-serialisable (the batch hash digests the
    exact float values).  ``request_id`` is a correlation handle for the
    caller and ``deadline_s`` an optional shed-after bound (seconds from
    submission; expired requests are shed before dispatch with an error
    response); both are cosmetic — excluded from equality and from the
    cache key, like every display-only field in the repo's cell families
    (a deadline decides *whether* a request is served, never what its
    output is).
    """

    layer: str
    activations: tuple[tuple[float, ...], ...]
    request_id: str | None = field(default=None, compare=False)
    deadline_s: float | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        rows = tuple(
            tuple(float(value) for value in row) for row in self.activations
        )
        if not rows or not rows[0]:
            raise ValueError("activations must be a non-empty K x n matrix")
        if any(len(row) != len(rows[0]) for row in rows):
            raise ValueError("activation rows must all have the same width")
        if self.deadline_s is not None and self.deadline_s < 0.0:
            raise ValueError("a request deadline must be non-negative")
        object.__setattr__(self, "activations", rows)

    @classmethod
    def from_array(
        cls,
        layer: str,
        activations: np.ndarray,
        *,
        request_id: str | None = None,
        deadline_s: float | None = None,
    ) -> "PredictRequest":
        """Build a request from a ``(K,)`` or ``(K, n)`` numpy operand."""
        array = np.asarray(activations, dtype=np.float64)
        if array.ndim == 1:
            array = array[:, np.newaxis]
        if array.ndim != 2:
            raise ValueError("activations must be 1-D or 2-D")
        return cls(
            layer=layer,
            activations=tuple(tuple(row) for row in array.tolist()),
            request_id=request_id,
            deadline_s=deadline_s,
        )

    @property
    def width(self) -> int:
        """Number of activation columns the request contributes."""
        return len(self.activations[0])

    @property
    def rows(self) -> int:
        """Number of activation rows (the layer's reduction dimension K)."""
        return len(self.activations)

    def to_array(self) -> np.ndarray:
        """The request operand as a ``(K, n)`` float64 array."""
        return np.asarray(self.activations, dtype=np.float64)

    def to_dict(self) -> dict:
        """Canonical JSON-compatible form (used for hashing and export)."""
        return {
            "layer": self.layer,
            "activations": [list(row) for row in self.activations],
        }


@dataclass(frozen=True)
class PredictResponse:
    """The served result of one :class:`PredictRequest` — or its failure.

    ``output`` is the layer's ``(M, n)`` output slice for the request's
    columns; ``width`` is the total column width of the micro-batch the
    request was coalesced into; ``latency_s`` is the submit-to-completion
    wall time (``None`` on the offline replay path, which is pure and
    therefore unclocked).  A failed request (executor error, quarantined
    poison batch, expired deadline, shutdown shed) carries ``error`` text
    and ``output=None`` — the caller always gets exactly one response per
    accepted request, success or not.
    """

    request_id: str | None
    layer: str
    output: np.ndarray | None
    width: int
    latency_s: float | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True for a served result, False for a structured error reply."""
        return self.error is None

    def to_dict(self) -> dict:
        """Flat JSON-friendly form (one object per response)."""
        return {
            "id": self.request_id,
            "layer": self.layer,
            "status": "ok" if self.error is None else "error",
            "error": self.error,
            "output": None if self.output is None else self.output.tolist(),
            "width": self.width,
            "latency_ms": None if self.latency_s is None else self.latency_s * 1e3,
        }


@dataclass(frozen=True)
class ServeBatch:
    """One micro-batch: coalesced requests bound to a plan and weight seed.

    The batch is the serving cell — everything the output depends on is a
    field and flows through :meth:`to_dict` into the cache key: the tuning
    plan (which kernel serves the layer), the seed the pruned weights derive
    from, the layer, and the exact request payloads in coalescing order.
    ``batch_id`` is dispatch bookkeeping and cosmetic.
    """

    plan: TuningPlan
    weight_seed: int
    layer: str
    requests: tuple[PredictRequest, ...]
    batch_id: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))
        if not self.requests:
            raise ValueError("a micro-batch needs at least one request")
        if any(request.layer != self.layer for request in self.requests):
            raise ValueError("all requests of a micro-batch must target its layer")

    @property
    def width(self) -> int:
        """Total coalesced column width of the batch."""
        return sum(request.width for request in self.requests)

    def to_dict(self) -> dict:
        """Canonical JSON-compatible form (used for hashing and export)."""
        return {
            "plan": self.plan.to_dict(),
            "weight_seed": self.weight_seed,
            "layer": self.layer,
            "requests": [request.to_dict() for request in self.requests],
        }

    def config_hash(self, *, salt: str = MODEL_VERSION) -> str:
        """Stable hex digest (shared keying scheme of every cell family)."""
        return canonical_config_hash(self.to_dict(), salt=salt)


@dataclass(frozen=True)
class ServeBatchRecord:
    """Result of executing one :class:`ServeBatch`.

    ``outputs`` holds one ``(M, n_i)`` float64 array per request, in the
    batch's coalescing order, sliced out of the single coalesced kernel
    execution.
    """

    config: ServeBatch
    outputs: tuple[np.ndarray, ...]

    @property
    def width(self) -> int:
        """Total coalesced column width the batch was served at."""
        return self.config.width


def _encode_serve_record(record: object) -> dict:
    """Cache codec: a :class:`ServeBatchRecord` as a debuggable JSON entry."""
    assert isinstance(record, ServeBatchRecord)
    return {
        "config": record.config.to_dict(),
        "outputs": [output.tolist() for output in record.outputs],
    }


def _decode_serve_record(config: object, entry: Mapping) -> ServeBatchRecord | None:
    """Cache codec: rebuild a record from a JSON entry (malformed -> miss)."""
    assert isinstance(config, ServeBatch)
    outputs = entry.get("outputs")
    if not isinstance(outputs, list) or len(outputs) != len(config.requests):
        return None
    return ServeBatchRecord(
        config=config,
        outputs=tuple(np.asarray(output, dtype=np.float64) for output in outputs),
    )


#: Per-process runtime memo: the prepared :class:`PlannedModel` and derived
#: weights of recently served plans.  This is the shared prepared-weight
#: cache of the worker processes — each worker derives (or, under the fork
#: start method, inherits copy-on-write from the parent's warm-up) the
#: compressed kernel formats once and reuses them across every batch it
#: serves, mirroring the accuracy cells' per-worker dense-proxy memo.
_RUNTIME_MEMO: OrderedDict[str, tuple[PlannedModel, dict]] = OrderedDict()

#: How many plan runtimes one process keeps prepared at a time.
_RUNTIME_MEMO_SIZE = 4


def _runtime_for(plan: TuningPlan, weight_seed: int) -> tuple[PlannedModel, dict]:
    """The memoised ``(PlannedModel, weights)`` runtime of one plan."""
    key = canonical_config_hash({"plan": plan.to_dict(), "weight_seed": weight_seed})
    runtime = _RUNTIME_MEMO.get(key)
    if runtime is not None:
        _RUNTIME_MEMO.move_to_end(key)
        return runtime
    runtime = planned_runtime(plan, weight_seed)
    _RUNTIME_MEMO[key] = runtime
    while len(_RUNTIME_MEMO) > _RUNTIME_MEMO_SIZE:
        _RUNTIME_MEMO.popitem(last=False)
    return runtime


def _execute_serve_batch(batch: ServeBatch) -> ServeBatchRecord:
    """Serve one micro-batch: coalesce, run the assigned kernel once, slice.

    Pure function of the batch (seeded weight derivation, no clock, no
    environment), so records are identical wherever the batch executes.
    """
    model, weights = _runtime_for(batch.plan, batch.weight_seed)
    weight = weights[batch.layer]
    coalesced = np.concatenate(
        [request.to_array() for request in batch.requests], axis=1
    )
    output = model.matmul(batch.layer, weight, coalesced)
    outputs: list[np.ndarray] = []
    start = 0
    for request in batch.requests:
        stop = start + request.width
        outputs.append(np.ascontiguousarray(output[:, start:stop]))
        start = stop
    return ServeBatchRecord(config=batch, outputs=tuple(outputs))


def execute_serve_batches(batches: list[ServeBatch]) -> list[ServeBatchRecord]:
    """Serial batch executor (the :class:`CellTask` entry point)."""
    return [_execute_serve_batch(batch) for batch in batches]


#: The serving cell family, pluggable into ``SweepRunner.run_cells``:
#: contiguous chunking keeps each worker's batches on as few plans/layers as
#: possible, so the per-process prepared-weight memo is hit instead of
#: rebuilt per stride.
SERVE_TASK = CellTask(
    name="serve",
    execute=execute_serve_batches,
    cache_filename="serve-cache.json",
    encode=_encode_serve_record,
    decode=_decode_serve_record,
    chunking="contiguous",
)
