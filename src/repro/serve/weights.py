"""Deterministic pruned weights for a tuning plan's workload.

The service binds a :class:`~repro.tune.planner.TuningPlan` to concrete
weight tensors.  Real deployments would load trained checkpoints; this repo
derives them the same way :class:`~repro.tune.measure.MeasuredRefiner`
derives its probe operands — a seeded unstructured mask at the plan's
density over seeded normal values — so the whole serving state is a pure
function of ``(plan, weight_seed)``.  Every kernel re-compresses the dense
masked tensor into its own format inside ``prepare`` (Shfl-BW falls back to
its deterministic degenerate row grouping when no witness permutation is
supplied), which keeps weight derivation kernel-agnostic.
"""

from __future__ import annotations

import numpy as np

from ..tune.planned import PlannedModel
from ..tune.planner import TuningPlan

__all__ = ["derive_weights", "planned_runtime"]


def derive_weights(plan: TuningPlan, weight_seed: int) -> dict[str, np.ndarray]:
    """Seeded pruned weight tensors, one ``(M, K)`` array per planned layer.

    Layers are seeded independently (``weight_seed`` plus the assignment's
    position in the plan), so a weight tensor depends only on the plan and
    the seed — never on which subset of layers a worker happens to touch.
    """
    density = 1.0 - plan.sparsity
    model = PlannedModel(plan)
    weights: dict[str, np.ndarray] = {}
    for index, assignment in enumerate(plan.assignments):
        shape = model.layers[assignment.layer].gemm
        rng = np.random.default_rng([int(weight_seed), index])
        values = rng.normal(size=(shape.m, shape.k))
        mask = rng.random(size=(shape.m, shape.k)) < density
        weights[assignment.layer] = values * mask
    return weights


def planned_runtime(
    plan: TuningPlan, weight_seed: int
) -> tuple[PlannedModel, dict[str, np.ndarray]]:
    """The executable runtime of a plan: its model plus derived weights."""
    return PlannedModel(plan), derive_weights(plan, weight_seed)
