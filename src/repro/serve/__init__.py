"""Micro-batching inference serving over tuning plans.

The serving layer of the reproduction (ROADMAP item 1): load a
:class:`~repro.tune.planner.TuningPlan` plus derived pruned weights once,
then answer ``predict`` requests through
:class:`~repro.tune.planned.PlannedModel` with timing-model-planned dynamic
micro-batching, worker processes sharing prepared-weight caches, and
bounded-queue backpressure.  See ``docs/architecture.md`` for the data flow
and the README's Serving section for the CLI quickstart.
"""

from .batcher import (
    DEFAULT_WIDTHS,
    BatchWindow,
    MicroBatcher,
    QueueFullError,
    replay_batches,
    serving_windows,
)
from .cells import (
    SERVE_TASK,
    PredictRequest,
    PredictResponse,
    ServeBatch,
    ServeBatchRecord,
    execute_serve_batches,
)
from .faults import (
    FAULT_KINDS,
    BatchError,
    FaultInjectionError,
    FaultPlan,
    FaultSpec,
)
from .pool import BatchResult, PoolStompedWarning, WorkerPool
from .service import (
    DEFAULT_WEIGHT_SEED,
    InferenceService,
    PendingPrediction,
    ServiceOverloadedError,
    ServiceStats,
)
from .weights import derive_weights, planned_runtime

__all__ = [
    "DEFAULT_WEIGHT_SEED",
    "DEFAULT_WIDTHS",
    "FAULT_KINDS",
    "BatchError",
    "BatchResult",
    "BatchWindow",
    "FaultInjectionError",
    "FaultPlan",
    "FaultSpec",
    "InferenceService",
    "MicroBatcher",
    "PendingPrediction",
    "PoolStompedWarning",
    "PredictRequest",
    "PredictResponse",
    "QueueFullError",
    "SERVE_TASK",
    "ServeBatch",
    "ServeBatchRecord",
    "ServiceOverloadedError",
    "ServiceStats",
    "WorkerPool",
    "derive_weights",
    "execute_serve_batches",
    "planned_runtime",
    "replay_batches",
    "serving_windows",
]
