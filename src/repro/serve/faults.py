"""Seeded, deterministic fault injection for the serving stack.

The serving worker pool and the service loop both accept an optional
:class:`FaultPlan` — a pure, picklable schedule of worker-side faults keyed
by ``(batch_id, attempt)``.  The plan makes every failure mode the stack
claims to survive *injectable on demand* and *reproducible from a seed*:

``kill``
    The worker process exits hard (``os._exit``) on receiving the batch —
    the crash-recovery path (respawn + resubmit, bounded by the pool's
    retry budget).
``hang``
    The worker sleeps without replying — the hang-detection path (the pool
    declares the worker dead after ``hang_timeout_s`` and revives it).
``delay``
    The worker sleeps ``delay_s`` and then serves normally — exercises the
    collect/ordering paths without any recovery machinery.
``corrupt``
    The worker writes a garbage message onto the result pipe instead of the
    result — the pool treats an unreadable stream as a dead worker.
``raise``
    The executor raises inside the worker — caught and answered with a
    structured :class:`BatchError` reply (bad inputs cost one reply, never
    one process).

Faults are decided on the *parent* side at submit time (the pool knows the
attempt count; the worker just obeys the action shipped with the batch), so
a plan's behaviour is a deterministic function of the dispatch order — the
chaos suite replays the same schedule against the same request stream and
asserts the same recovery story every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

__all__ = ["FAULT_KINDS", "BatchError", "FaultInjectionError", "FaultPlan", "FaultSpec"]

#: Every fault kind a :class:`FaultSpec` may carry.
FAULT_KINDS: tuple[str, ...] = ("kill", "hang", "delay", "corrupt", "raise")


class FaultInjectionError(RuntimeError):
    """The injected executor exception (the ``raise`` fault kind)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: which batch, what happens, how many attempts.

    ``times`` is the number of *attempts* the fault fires on: ``times=1``
    models a transient failure (the retry succeeds), while a large ``times``
    models a poison batch that deterministically crashes every worker it
    touches (the quarantine path).  ``delay_s`` parameterises the ``delay``
    and ``hang`` sleeps (hangs sleep ``max(delay_s, HANG_SLEEP_S)``).
    """

    kind: str
    batch_id: int
    times: int = 1
    delay_s: float = 0.05

    #: How long a ``hang`` fault sleeps at minimum (effectively forever on
    #: test timescales; SIGTERM from the reviving pool ends it early).
    HANG_SLEEP_S: ClassVar[float] = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})")
        if self.times <= 0:
            raise ValueError("a fault must fire on at least one attempt")
        if self.delay_s < 0.0:
            raise ValueError("delay must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec` entries.

    The plan is consulted by the pool at submit time with the batch id and
    its zero-based attempt count; the first matching spec whose ``times``
    budget covers the attempt is the action.  An empty plan injects nothing
    (the production default).
    """

    specs: tuple[FaultSpec, ...] = ()

    def action_for(self, batch_id: int, attempt: int) -> FaultSpec | None:
        """The fault to inject on ``attempt`` of ``batch_id`` (None = serve)."""
        for spec in self.specs:
            if spec.batch_id == batch_id and attempt < spec.times:
                return spec
        return None

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        batches: int,
        rate: float = 0.25,
        kinds: tuple[str, ...] = ("kill", "delay", "corrupt", "raise"),
        times: int = 1,
        delay_s: float = 0.02,
    ) -> "FaultPlan":
        """A random-but-reproducible schedule over ``batches`` batch ids.

        Each batch id independently draws a fault with probability ``rate``
        and a uniformly chosen kind; the same ``seed`` always produces the
        same schedule, so a chaos run is replayable bit for bit.  ``hang``
        is deliberately absent from the default kinds — include it only when
        the pool under test has a finite ``hang_timeout_s``.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        rng = np.random.default_rng(seed)
        specs = []
        for batch_id in range(batches):
            if rng.random() < rate:
                kind = kinds[int(rng.integers(len(kinds)))]
                specs.append(
                    FaultSpec(kind=kind, batch_id=batch_id, times=times, delay_s=delay_s)
                )
        return cls(specs=tuple(specs))


@dataclass(frozen=True)
class BatchError:
    """A structured failure reply for one batch (instead of a dead worker).

    ``kind`` states which guarantee produced it:

    * ``"executor"`` — the batch executor raised; the worker survived and
      answered with the exception text (one reply per bad input).
    * ``"quarantined"`` — the batch crashed workers past the pool's retry
      budget and was isolated (poison-batch isolation: its requests get
      error responses, the pool keeps serving everything else).
    * ``"shutdown"`` — a bounded ``stop(timeout=...)`` shed the batch
      before it could be served.
    """

    batch_id: int
    kind: str
    message: str

    def __post_init__(self) -> None:
        if self.kind not in ("executor", "quarantined", "shutdown"):
            raise ValueError(f"unknown batch-error kind {self.kind!r}")

    def describe(self) -> str:
        """One human-readable line (the error text of the responses)."""
        return f"[{self.kind}] batch {self.batch_id}: {self.message}"
