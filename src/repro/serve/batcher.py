"""Dynamic micro-batching: coalescing windows planned by the timing model.

The batched timing model can *predict* how a layer's execution time scales
with the activation batch ``N`` — one :meth:`~repro.kernels.base.SpMMKernel.
estimate_grid` call prices every candidate width at once.  Serving turns
that prediction into a coalescing policy per layer: pick the width ``w*``
that maximises modelled throughput (``w / t(w)``), and bound how long any
request may wait for companions by a deadline derived from ``t(w*)`` (a
request never waits longer than one full batch is predicted to take, so
worst-case latency stays within ~2x the batch service time).

:class:`MicroBatcher` implements the queueing side with an *explicit clock*:
every mutation takes ``now`` as an argument, so the deadline semantics are
deterministic and unit-testable with a fake clock, and the class itself
stays off the wall clock entirely (the service supplies ``time.monotonic``).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..gpu.arch import get_gpu
from ..kernels.registry import make_kernel
from ..tune.candidates import candidate_density
from ..tune.planned import PlannedModel
from ..tune.planner import TuningPlan
from .cells import PredictRequest

__all__ = [
    "DEFAULT_WIDTHS",
    "BatchWindow",
    "QueueFullError",
    "MicroBatcher",
    "serving_windows",
    "replay_batches",
]

#: Candidate coalescing widths the window planner prices per layer
#: (decode-time skinny shapes up to a modest serving batch).
DEFAULT_WIDTHS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)


class QueueFullError(RuntimeError):
    """Raised by :meth:`MicroBatcher.push` when the bounded queue is full.

    This is the explicit backpressure signal: the caller sheds the request
    (and tells the client) instead of queueing unbounded work.
    """


@dataclass(frozen=True)
class BatchWindow:
    """The coalescing policy of one layer.

    ``width`` is the target coalesced column count; ``deadline_s`` how long
    the oldest queued request may wait before a partial batch is flushed;
    ``predicted_batch_time_s`` / ``predicted_unit_time_s`` the timing-model
    estimates at ``width`` and at ``N = 1`` that the policy was derived from
    (the deadline starts as the modelled batch time and is re-scaled to host
    time by the service's calibration pass).
    """

    layer: str
    width: int
    deadline_s: float
    predicted_batch_time_s: float
    predicted_unit_time_s: float

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("window width must be positive")
        if self.deadline_s < 0.0:
            raise ValueError("deadline must be non-negative")

    def calibrated(self, scale: float) -> "BatchWindow":
        """The same window with its deadline re-scaled to host time."""
        if scale <= 0.0:
            raise ValueError("calibration scale must be positive")
        return dataclasses.replace(self, deadline_s=self.deadline_s * scale)

    def with_deadline(self, deadline_s: float) -> "BatchWindow":
        """The same window with an explicit deadline override."""
        return dataclasses.replace(self, deadline_s=float(deadline_s))


def serving_windows(
    plan: TuningPlan,
    *,
    widths: Sequence[int] = DEFAULT_WIDTHS,
    width: int | None = None,
    deadline_s: float | None = None,
) -> dict[str, BatchWindow]:
    """Plan one :class:`BatchWindow` per linear layer of a tuning plan.

    For each layer the assigned kernel is priced at every candidate width
    with one batched timing-model call, and the throughput argmax picks the
    coalescing target (first maximum wins ties, so windows are stable).
    ``width`` forces the same coalescing width everywhere; ``deadline_s``
    forces the same deadline (otherwise the modelled batch time is the
    deadline, awaiting the service's host-time calibration).  Convolution
    layers have no token dimension to coalesce and are skipped.
    """
    candidate_widths = tuple(int(w) for w in widths)
    if not candidate_widths or min(candidate_widths) <= 0:
        raise ValueError("widths must be positive")
    if width is not None and width <= 0:
        raise ValueError("width override must be positive")
    arch = get_gpu(plan.gpu)
    model = PlannedModel(plan)
    density = 1.0 - plan.sparsity
    windows: dict[str, BatchWindow] = {}
    for assignment in plan.assignments:
        layer = model.layers[assignment.layer]
        if layer.kind != "linear":
            continue
        kernel = make_kernel(assignment.kernel, **dict(assignment.kernel_kwargs))
        scored_density = candidate_density(kernel, density)
        priced = candidate_widths if width is None else (int(width),)
        shapes = [layer.with_tokens(w).gemm for w in priced]
        times = kernel.estimate_grid(
            arch, shapes, np.full(len(priced), scored_density)
        ).total_time_s
        throughput = np.asarray(priced, dtype=np.float64) / times
        best = int(np.argmax(throughput))
        unit_time = float(times[0]) if priced[0] == 1 else float(
            kernel.estimate(arch, layer.with_tokens(1).gemm, scored_density).total_time_s
        )
        batch_time = float(times[best])
        windows[assignment.layer] = BatchWindow(
            layer=assignment.layer,
            width=int(priced[best]),
            deadline_s=batch_time if deadline_s is None else float(deadline_s),
            predicted_batch_time_s=batch_time,
            predicted_unit_time_s=unit_time,
        )
    return windows


class MicroBatcher:
    """Bounded per-layer request queues with deadline-driven coalescing.

    Requests accumulate per layer until either (a) the layer's window width
    is filled — the batch is released immediately — or (b) the *oldest*
    queued request has waited ``deadline_s`` — the partial batch is flushed
    so no request ever waits past its deadline.  ``max_pending`` bounds the
    total queued width across layers; :meth:`push` raises
    :class:`QueueFullError` beyond it (reject semantics — the service never
    silently drops an accepted request).

    All methods take ``now`` explicitly (any monotonic float clock).
    """

    def __init__(
        self, windows: Mapping[str, BatchWindow], *, max_pending: int = 256
    ) -> None:
        """``windows`` maps layer name to its coalescing policy."""
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.windows = dict(windows)
        self.max_pending = max_pending
        self._queues: dict[str, deque[tuple[PredictRequest, float]]] = {
            layer: deque() for layer in self.windows
        }

    @property
    def pending(self) -> int:
        """Total queued column width across all layers."""
        return sum(
            request.width
            for queue in self._queues.values()
            for request, _ in queue
        )

    def push(self, request: PredictRequest, now: float) -> None:
        """Enqueue one request at time ``now``.

        Raises :class:`KeyError` for layers the plan does not serve and
        :class:`QueueFullError` when the bounded queue is full.
        """
        if request.layer not in self._queues:
            raise KeyError(f"no serving window for layer {request.layer!r}")
        if self.pending + request.width > self.max_pending:
            raise QueueFullError(
                f"queue full: {self.pending} pending columns + "
                f"{request.width} would exceed max_pending={self.max_pending}"
            )
        self._queues[request.layer].append((request, now))

    def poll(self, now: float) -> list[list[PredictRequest]]:
        """Release every batch that is ready at time ``now``.

        Width-filled batches release unconditionally; a partial batch
        releases once its oldest request's deadline has passed.  Layers are
        visited in sorted-name order so the release order is deterministic
        for a given queue state.
        """
        ready: list[list[PredictRequest]] = []
        for layer in sorted(self._queues):
            window = self.windows[layer]
            queue = self._queues[layer]
            while self._queued_width(queue) >= window.width:
                ready.append(self._take(queue, window.width))
            if queue and now - queue[0][1] >= window.deadline_s:
                ready.append(self._take(queue, window.width))
        return ready

    def next_deadline(self) -> float | None:
        """The earliest time any queued request's deadline expires.

        Covers both deadline kinds: each layer's coalescing-window deadline
        (oldest request + ``window.deadline_s``) and every queued request's
        own optional shed deadline (``request.deadline_s``), so the service
        wakes in time to flush partial batches *and* to shed expired work.
        """
        deadlines: list[float] = []
        for layer, queue in self._queues.items():
            if not queue:
                continue
            deadlines.append(queue[0][1] + self.windows[layer].deadline_s)
            deadlines.extend(
                enqueued + request.deadline_s
                for request, enqueued in queue
                if request.deadline_s is not None
            )
        return min(deadlines) if deadlines else None

    def remove(self, request: PredictRequest) -> bool:
        """Withdraw one queued request by identity (False if not queued).

        The cancellation path: a caller whose ``result(timeout=...)``
        expired reclaims the queue slot so the request is neither served
        nor counted later.  Only *queued* requests can be withdrawn — once
        released into a batch the request is in flight and will be
        answered.
        """
        queue = self._queues.get(request.layer)
        if queue is None:
            return False
        for entry in queue:
            if entry[0] is request:
                queue.remove(entry)
                return True
        return False

    def shed_expired(self, now: float) -> list[PredictRequest]:
        """Remove (and return) every queued request whose own deadline passed.

        Requests carrying ``deadline_s`` are shed *before* dispatch once
        ``now - enqueue_time >= deadline_s`` — the service answers them with
        an expired error response instead of spending batch capacity on
        work nobody is waiting for.  Layers are visited in sorted order so
        the shed order is deterministic.
        """
        shed: list[PredictRequest] = []
        for layer in sorted(self._queues):
            queue = self._queues[layer]
            kept: deque[tuple[PredictRequest, float]] = deque()
            for request, enqueued in queue:
                if (
                    request.deadline_s is not None
                    and now - enqueued >= request.deadline_s
                ):
                    shed.append(request)
                else:
                    kept.append((request, enqueued))
            self._queues[layer] = kept
        return shed

    def drain(self) -> list[list[PredictRequest]]:
        """Release everything immediately (shutdown path): width-filled
        batches first, then one final partial batch per layer."""
        ready: list[list[PredictRequest]] = []
        for layer in sorted(self._queues):
            window = self.windows[layer]
            queue = self._queues[layer]
            while queue:
                ready.append(self._take(queue, window.width))
        return ready

    @staticmethod
    def _queued_width(queue: deque[tuple[PredictRequest, float]]) -> int:
        return sum(request.width for request, _ in queue)

    @staticmethod
    def _take(
        queue: deque[tuple[PredictRequest, float]], width: int
    ) -> list[PredictRequest]:
        """Pop requests in arrival order until ``width`` columns are filled
        (or the queue empties)."""
        batch: list[PredictRequest] = []
        filled = 0
        while queue and filled < width:
            request, _ = queue.popleft()
            batch.append(request)
            filled += request.width
        return batch


def replay_batches(
    requests: Iterable[PredictRequest],
    windows: Mapping[str, BatchWindow],
) -> list[list[PredictRequest]]:
    """Deterministic batch composition of a whole request stream.

    The replay (offline) path: batches are a pure function of the request
    order and the windows — per layer, requests coalesce in arrival order
    and a batch is emitted the moment its window width fills; leftovers
    flush as partial batches in layer first-appearance order.  Because the
    composition is deterministic, replaying the same stream serially or
    across any number of workers produces byte-identical outputs.
    """
    buffers: dict[str, list[PredictRequest]] = {}
    order: list[str] = []
    batches: list[list[PredictRequest]] = []
    for request in requests:
        if request.layer not in windows:
            raise KeyError(f"no serving window for layer {request.layer!r}")
        buffer = buffers.setdefault(request.layer, [])
        if not buffer and request.layer not in order:
            order.append(request.layer)
        buffer.append(request)
        if sum(r.width for r in buffer) >= windows[request.layer].width:
            batches.append(buffer.copy())
            buffer.clear()
    for layer in order:
        if buffers.get(layer):
            batches.append(buffers[layer])
    return batches
