"""Long-lived worker processes executing serve batches.

The offline sweeps use ``ProcessPoolExecutor`` maps over a *closed* config
list; serving needs the open-ended version — workers that stay up across an
unbounded request stream, accept one micro-batch at a time, and survive
crashes.  :class:`WorkerPool` keeps ``N`` processes on duplex pipes, routes
each batch to the least-loaded worker, and recovers from a dead worker by
respawning it and resubmitting everything it still owed (a batch is only
dropped from the outstanding set once its result arrives, so a crash never
loses accepted work).

Recovery is *bounded*, never optimistic:

* a worker-side executor exception is caught in the worker and answered
  with a structured :class:`~repro.serve.faults.BatchError` reply — bad
  inputs cost one reply, not one process;
* a batch that crashes workers more than ``max_retries`` times is
  **quarantined**: it surfaces from ``collect`` as an errored
  :class:`BatchResult` instead of being resubmitted forever;
* respawns back off exponentially, and a pool whose workers keep dying
  without ever producing a result trips a **circuit breaker**
  (``broken``) — it stops respawning, strands the unfinished batches for
  the caller to reclaim (:meth:`abandon`), and lets the service degrade to
  inline execution;
* a worker that stops answering (a hang, not a crash) is declared dead
  after ``hang_timeout_s`` and revived like any other casualty;
* ``close(timeout=...)`` escalates join → terminate → kill per stage and
  reports what each stage had to do.

Workers run :func:`~repro.serve.cells.execute_serve_batches` — the same pure
cell executor as the replay path — with the wall-clock timing wrapped
*around* the pure function, so results are byte-identical wherever a batch
lands and the purity gate still covers the compute.  An optional
:class:`~repro.serve.faults.FaultPlan` injects deterministic worker-side
faults for the chaos suite; the plan is consulted parent-side at submit
time, so the fault schedule never touches the pure executor.

On Linux the default (fork) start method makes the parent's warmed-up
prepared-weight memo (:mod:`repro.serve.cells`) visible to every worker
copy-on-write: the service warms the runtime *before* building the pool, so
workers share the prepared kernel formats instead of re-deriving them.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from dataclasses import dataclass, field
from multiprocessing import connection

import numpy as np

from .cells import ServeBatch, execute_serve_batches
from .faults import BatchError, FaultInjectionError, FaultPlan, FaultSpec

__all__ = ["BatchResult", "PoolStompedWarning", "WorkerPool"]


class PoolStompedWarning(UserWarning):
    """A recoverable pool anomaly: stale result, corrupt message, revive."""


@dataclass(frozen=True)
class BatchResult:
    """One completed micro-batch: outputs and worker wall time, or an error.

    Exactly one of ``outputs`` / ``error`` is set: a successful batch
    carries its per-request output arrays, a failed one a structured
    :class:`~repro.serve.faults.BatchError` (executor exception or
    quarantine) the service turns into per-request error responses.
    """

    batch: ServeBatch
    outputs: tuple[np.ndarray, ...] | None
    elapsed_s: float
    error: BatchError | None = None


def _worker_main(conn: connection.Connection) -> None:
    """Worker loop: receive ``(batch, fault)``, execute, send a tagged reply.

    ``None`` is the shutdown sentinel.  Replies are ``("ok", batch_id,
    outputs, elapsed)`` or ``("err", batch_id, message, elapsed)`` — an
    executor exception is *answered*, not fatal.  The timing wraps the pure
    executor from outside, so the measured host time per batch feeds the
    service's per-layer recordings without the executor touching a clock.
    An injected :class:`~repro.serve.faults.FaultSpec` is obeyed before (or
    instead of) executing; the pure executor itself is never instrumented.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if message is None:
            break
        batch, fault = message
        if fault is not None and fault.kind == "corrupt":
            # The garbage message *is* this request's one reply — the
            # parent's quarantine path is the thing being exercised, so the
            # normal execute-and-send path must not also answer.
            try:
                conn.send(("garbage", "not-a-result"))
            except (BrokenPipeError, OSError):
                pass
            continue
        if fault is not None and not _obey_fault(fault):
            continue
        start = time.perf_counter()
        try:
            if fault is not None and fault.kind == "raise":
                raise FaultInjectionError(
                    f"injected executor fault on batch {batch.batch_id}"
                )
            record = execute_serve_batches([batch])[0]
        except Exception as exc:
            elapsed = time.perf_counter() - start
            reply = ("err", batch.batch_id, f"{type(exc).__name__}: {exc}", elapsed)
        else:
            elapsed = time.perf_counter() - start
            reply = ("ok", batch.batch_id, record.outputs, elapsed)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


def _obey_fault(fault: FaultSpec) -> bool:
    """Apply one injected fault worker-side; False skips normal execution.

    ``raise`` returns True — it fires *inside* the execution try block so
    the structured-error reply path is the thing being exercised.
    ``corrupt`` never reaches here: the worker loop answers it inline (the
    garbage message is the request's one reply), keeping this helper free
    of the reply channel entirely.
    """
    if fault.kind == "kill":
        os._exit(13)
    if fault.kind == "hang":
        time.sleep(max(fault.delay_s, FaultSpec.HANG_SLEEP_S))
        return False  # pragma: no cover - the sleep outlives the test
    if fault.kind == "delay":
        time.sleep(fault.delay_s)
        return True
    return True  # "raise" is handled by the caller inside its try block


@dataclass(eq=False)
class _Worker:
    """Parent-side handle of one worker process (identity equality)."""

    process: multiprocessing.process.BaseProcess
    conn: connection.Connection
    outstanding: dict[int, ServeBatch] = field(default_factory=dict)
    sent_at: dict[int, float] = field(default_factory=dict)


class WorkerPool:
    """``N`` serve workers behind duplex pipes, with bounded crash recovery.

    ``submit`` routes a batch (whose ``batch_id`` must be unique among the
    pool's outstanding work) to the least-loaded live worker; ``collect``
    gathers finished results and transparently respawns any worker found
    dead, resubmitting its outstanding batches up to ``max_retries`` crashes
    per batch — past the budget the batch is quarantined and surfaces as an
    errored :class:`BatchResult`.  ``close`` shuts the pool down after the
    caller has collected everything it cares about.

    ``submit`` writes to a pipe and may block until the target worker
    reads.  Callers whose batches or results can exceed the OS socket
    buffer must therefore keep at most one batch outstanding per worker
    between ``collect`` calls (as :class:`~repro.serve.service.\
InferenceService` does) — submitting more can deadlock the parent against
    a worker that is itself blocked writing a large result.

    Parameters
    ----------
    workers:
        Worker process count (positive).
    context:
        Multiprocessing start method (platform default when ``None``).
    max_retries:
        Crash budget per batch: a batch is resubmitted after at most this
        many worker deaths, then quarantined.
    backoff_base_s / backoff_cap_s:
        Exponential respawn backoff: the ``k``-th consecutive failure
        sleeps ``min(base * 2**(k-1), cap)`` before the replacement worker
        starts, so a crash-looping pool cannot busy-spin fork().
    breaker_threshold:
        Consecutive worker deaths (without a single successful reply in
        between) that trip the circuit breaker.
    hang_timeout_s:
        Declare a worker dead when its oldest outstanding batch has waited
        this long (``None`` disables hang detection).
    fault_plan:
        Optional deterministic fault schedule (chaos testing only).
    """

    def __init__(
        self,
        workers: int,
        *,
        context: str | None = None,
        max_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 1.0,
        breaker_threshold: int = 8,
        hang_timeout_s: float | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        """Spawn ``workers`` processes (see the class docstring for knobs)."""
        if workers <= 0:
            raise ValueError("worker count must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if breaker_threshold <= 0:
            raise ValueError("breaker_threshold must be positive")
        if hang_timeout_s is not None and hang_timeout_s <= 0.0:
            raise ValueError("hang_timeout_s must be positive (or None)")
        self._ctx = multiprocessing.get_context(context)
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.breaker_threshold = int(breaker_threshold)
        self.hang_timeout_s = hang_timeout_s
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        #: Total batch resubmissions caused by worker deaths.
        self.retried = 0
        #: Batches quarantined after exhausting the retry budget.
        self.quarantined = 0
        #: True once the circuit breaker tripped (no more respawns).
        self.broken = False
        self._consecutive_failures = 0
        self._attempts: dict[int, int] = {}
        self._stranded: list[ServeBatch] = []
        self._errored: list[BatchResult] = []
        self._workers = [self._spawn() for _ in range(workers)]
        self._closed = False

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def outstanding(self) -> int:
        """How many submitted batches a live worker currently owes."""
        return sum(len(worker.outstanding) for worker in self._workers)

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        return _Worker(process=process, conn=parent_conn)

    def _quarantine(self, batch: ServeBatch, crashes: int) -> None:
        """Isolate a poison batch: errored result instead of another retry."""
        self.quarantined += 1
        self._attempts.pop(batch.batch_id, None)
        error = BatchError(
            batch_id=batch.batch_id,
            kind="quarantined",
            message=(
                f"batch crashed {crashes} worker(s); retry budget "
                f"max_retries={self.max_retries} exhausted"
            ),
        )
        self._errored.append(
            BatchResult(batch=batch, outputs=None, elapsed_s=0.0, error=error)
        )

    def _revive(self, worker: _Worker, *, reason: str) -> None:
        """Replace a dead worker and resubmit what it owed, within budget.

        Past ``breaker_threshold`` consecutive deaths the breaker trips:
        the dead worker is removed (not replaced) and its batches are
        stranded for :meth:`abandon` instead of resubmitted.
        """
        self._consecutive_failures += 1
        orphaned = list(worker.outstanding.values())
        worker.outstanding.clear()
        worker.sent_at.clear()
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():  # pragma: no cover - stuck in the kernel
            worker.process.kill()
            worker.process.join(timeout=5.0)
        if not self.broken and self._consecutive_failures >= self.breaker_threshold:
            self.broken = True
            warnings.warn(
                f"worker pool circuit breaker tripped after "
                f"{self._consecutive_failures} consecutive worker deaths "
                f"(last: {reason}); no further respawns",
                PoolStompedWarning,
                stacklevel=3,
            )
        if self.broken:
            self._workers.remove(worker)
            self._stranded.extend(orphaned)
            return
        delay = min(
            self.backoff_base_s * (2 ** (self._consecutive_failures - 1)),
            self.backoff_cap_s,
        )
        if delay > 0.0:
            time.sleep(delay)
        replacement = self._spawn()
        self._workers[self._workers.index(worker)] = replacement
        for batch in orphaned:
            crashes = self._attempts.get(batch.batch_id, 0) + 1
            self._attempts[batch.batch_id] = crashes
            if crashes > self.max_retries:
                self._quarantine(batch, crashes)
            else:
                self.retried += 1
                self.submit(batch)

    def submit(self, batch: ServeBatch) -> None:
        """Send one batch to the least-loaded worker (crash-safe)."""
        if self._closed:
            raise RuntimeError("cannot submit to a closed pool")
        while True:
            if not self._workers:
                # Breaker tripped away every worker: strand for abandon().
                self._stranded.append(batch)
                return
            worker = min(self._workers, key=lambda w: len(w.outstanding))
            if batch.batch_id in worker.outstanding:
                raise ValueError(f"duplicate outstanding batch_id {batch.batch_id}")
            action = self.fault_plan.action_for(
                batch.batch_id, self._attempts.get(batch.batch_id, 0)
            )
            try:
                worker.conn.send((batch, action))
            except (BrokenPipeError, OSError):
                self._revive(worker, reason="pipe write failed")
                continue
            worker.outstanding[batch.batch_id] = batch
            worker.sent_at[batch.batch_id] = time.monotonic()
            return

    def _pop_result(self, worker: _Worker, message: object) -> BatchResult | None:
        """Validate one worker reply; None drops it (and may revive).

        A malformed message means the pipe's framing can no longer be
        trusted, so the worker is recycled; a well-formed reply for an
        unknown ``batch_id`` (e.g. a stale result from a batch already
        resubmitted elsewhere) is dropped with a warning instead of
        crashing the dispatcher.
        """
        if (
            not isinstance(message, tuple)
            or len(message) != 4
            or message[0] not in ("ok", "err")
            or not isinstance(message[1], int)
        ):
            warnings.warn(
                f"dropping corrupt pool message {message!r}; recycling its worker",
                PoolStompedWarning,
                stacklevel=3,
            )
            self._revive(worker, reason="corrupt pipe message")
            return None
        tag, batch_id, payload, elapsed = message
        batch = worker.outstanding.pop(batch_id, None)
        worker.sent_at.pop(batch_id, None)
        if batch is None:
            warnings.warn(
                f"dropping result for unknown batch_id {batch_id} "
                "(stale or duplicate reply)",
                PoolStompedWarning,
                stacklevel=3,
            )
            return None
        self._consecutive_failures = 0
        self._attempts.pop(batch_id, None)
        if tag == "err":
            error = BatchError(batch_id=batch_id, kind="executor", message=payload)
            return BatchResult(batch=batch, outputs=None, elapsed_s=elapsed, error=error)
        return BatchResult(batch=batch, outputs=payload, elapsed_s=elapsed)

    def collect(self, timeout: float | None = 0.0) -> list[BatchResult]:
        """Results (successes, executor errors, quarantines) ready in time.

        A worker whose pipe reports end-of-file (it crashed or was killed)
        is respawned and its outstanding batches are resubmitted within the
        retry budget; a worker that exceeds ``hang_timeout_s`` without
        answering is treated the same way.
        """
        results: list[BatchResult] = list(self._errored)
        self._errored.clear()
        conns = {worker.conn: worker for worker in self._workers}
        if conns:
            for ready in connection.wait(list(conns), timeout=timeout):
                worker = conns[ready]
                if worker not in self._workers:
                    continue  # revived earlier in this very loop
                try:
                    message = ready.recv()
                except (EOFError, OSError):
                    self._revive(worker, reason="pipe closed")
                    continue
                result = self._pop_result(worker, message)
                if result is not None:
                    results.append(result)
        if self.hang_timeout_s is not None:
            now = time.monotonic()
            for worker in list(self._workers):
                if worker.sent_at and now - min(worker.sent_at.values()) > (
                    self.hang_timeout_s
                ):
                    warnings.warn(
                        f"worker pid={worker.process.pid} unresponsive for "
                        f"> {self.hang_timeout_s}s; recycling it",
                        PoolStompedWarning,
                        stacklevel=2,
                    )
                    self._revive(worker, reason="hang timeout")
        results.extend(self._errored)
        self._errored.clear()
        return results

    def collect_all(self, *, poll_s: float = 0.05) -> list[BatchResult]:
        """Block until every outstanding batch resolved (or the pool broke).

        Termination is guaranteed by construction: every batch either
        completes, errors, quarantines after ``max_retries`` crashes, or is
        stranded when the breaker trips — with ``hang_timeout_s`` set, even
        silent workers cannot stall the loop.
        """
        results: list[BatchResult] = []
        while (self.outstanding or self._errored) and not self.broken:
            results.extend(self.collect(timeout=poll_s))
        results.extend(self.collect(timeout=0.0))
        return results

    def abandon(self) -> list[ServeBatch]:
        """Reclaim every unfinished batch (stranded + still outstanding).

        The degradation path: after the breaker trips the service takes the
        unfinished work back and executes it inline.  Late replies from
        workers still chewing on a reclaimed batch are dropped by
        ``collect`` as unknown ids.
        """
        reclaimed = list(self._stranded)
        self._stranded.clear()
        for worker in self._workers:
            reclaimed.extend(worker.outstanding.values())
            worker.outstanding.clear()
            worker.sent_at.clear()
        self._attempts.clear()
        reclaimed.sort(key=lambda batch: batch.batch_id)
        return reclaimed

    def close(self, timeout: float | None = 5.0) -> dict[str, int]:
        """Shut every worker down (idempotent), escalating within ``timeout``.

        Each worker gets the shutdown sentinel, then ``join(timeout)``;
        survivors are terminated, re-joined, and finally killed.  Returns a
        report of how far the escalation had to go:
        ``{"joined": ..., "terminated": ..., "killed": ...}``.
        """
        report = {"joined": 0, "terminated": 0, "killed": 0}
        if self._closed:
            return report
        self._closed = True
        stage_timeout = timeout if timeout is None else max(timeout, 0.0)
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=stage_timeout)
            if not worker.process.is_alive():
                report["joined"] += 1
            else:
                worker.process.terminate()
                worker.process.join(timeout=stage_timeout)
                if not worker.process.is_alive():
                    report["terminated"] += 1
                else:  # pragma: no cover - needs a SIGTERM-immune worker
                    worker.process.kill()
                    worker.process.join(timeout=stage_timeout)
                    report["killed"] += 1
            try:
                worker.conn.close()
            except OSError:
                pass
        return report
