"""Long-lived worker processes executing serve batches.

The offline sweeps use ``ProcessPoolExecutor`` maps over a *closed* config
list; serving needs the open-ended version — workers that stay up across an
unbounded request stream, accept one micro-batch at a time, and survive
crashes.  :class:`WorkerPool` keeps ``N`` processes on duplex pipes, routes
each batch to the least-loaded worker, and recovers from a dead worker by
respawning it and resubmitting everything it still owed (a batch is only
dropped from the outstanding set once its result arrives, so a crash never
loses accepted work).

Workers run :func:`~repro.serve.cells.execute_serve_batches` — the same pure
cell executor as the replay path — with the wall-clock timing wrapped
*around* the pure function, so results are byte-identical wherever a batch
lands and the purity gate still covers the compute.

On Linux the default (fork) start method makes the parent's warmed-up
prepared-weight memo (:mod:`repro.serve.cells`) visible to every worker
copy-on-write: the service warms the runtime *before* building the pool, so
workers share the prepared kernel formats instead of re-deriving them.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing import connection

import numpy as np

from .cells import ServeBatch, execute_serve_batches

__all__ = ["BatchResult", "WorkerPool"]


@dataclass(frozen=True)
class BatchResult:
    """One completed micro-batch: its outputs and the worker-side wall time."""

    batch: ServeBatch
    outputs: tuple[np.ndarray, ...]
    elapsed_s: float


def _worker_main(conn: connection.Connection) -> None:
    """Worker loop: receive a batch, execute it, send the timed result.

    ``None`` is the shutdown sentinel.  The timing wraps the pure executor
    from outside, so the measured host time per batch feeds the service's
    per-layer recordings without the executor itself touching a clock.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if message is None:
            break
        batch: ServeBatch = message
        start = time.perf_counter()
        record = execute_serve_batches([batch])[0]
        elapsed = time.perf_counter() - start
        try:
            conn.send((batch.batch_id, record.outputs, elapsed))
        except (BrokenPipeError, OSError):
            break
    conn.close()


@dataclass
class _Worker:
    """Parent-side handle of one worker process."""

    process: multiprocessing.process.BaseProcess
    conn: connection.Connection
    outstanding: dict[int, ServeBatch] = field(default_factory=dict)


class WorkerPool:
    """``N`` serve workers behind duplex pipes, with crash recovery.

    ``submit`` routes a batch (whose ``batch_id`` must be unique among the
    pool's outstanding work) to the least-loaded live worker; ``collect``
    gathers finished results and transparently respawns any worker found
    dead, resubmitting its outstanding batches.  ``close`` shuts the pool
    down after the caller has collected everything it cares about.

    ``submit`` writes to a pipe and may block until the target worker
    reads.  Callers whose batches or results can exceed the OS socket
    buffer must therefore keep at most one batch outstanding per worker
    between ``collect`` calls (as :class:`~repro.serve.service.\
InferenceService` does) — submitting more can deadlock the parent against
    a worker that is itself blocked writing a large result.
    """

    def __init__(self, workers: int, *, context: str | None = None) -> None:
        """Spawn ``workers`` processes (``context`` picks the
        multiprocessing start method; the platform default otherwise)."""
        if workers <= 0:
            raise ValueError("worker count must be positive")
        self._ctx = multiprocessing.get_context(context)
        self._workers = [self._spawn() for _ in range(workers)]
        self._closed = False

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def outstanding(self) -> int:
        """How many submitted batches have not been collected yet."""
        return sum(len(worker.outstanding) for worker in self._workers)

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        return _Worker(process=process, conn=parent_conn)

    def _revive(self, worker: _Worker) -> None:
        """Replace a dead worker in place and resubmit what it owed."""
        orphaned = list(worker.outstanding.values())
        worker.outstanding.clear()
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        replacement = self._spawn()
        index = self._workers.index(worker)
        self._workers[index] = replacement
        for batch in orphaned:
            self.submit(batch)

    def submit(self, batch: ServeBatch) -> None:
        """Send one batch to the least-loaded worker (crash-safe)."""
        if self._closed:
            raise RuntimeError("cannot submit to a closed pool")
        while True:
            worker = min(self._workers, key=lambda w: len(w.outstanding))
            if batch.batch_id in worker.outstanding:
                raise ValueError(f"duplicate outstanding batch_id {batch.batch_id}")
            try:
                worker.conn.send(batch)
            except (BrokenPipeError, OSError):
                self._revive(worker)
                continue
            worker.outstanding[batch.batch_id] = batch
            return

    def collect(self, timeout: float | None = 0.0) -> list[BatchResult]:
        """Results that are ready within ``timeout`` seconds.

        A worker whose pipe reports end-of-file (it crashed or was killed)
        is respawned and its outstanding batches are resubmitted; the
        results then surface from a later ``collect`` call.
        """
        results: list[BatchResult] = []
        conns = {worker.conn: worker for worker in self._workers}
        for ready in connection.wait(list(conns), timeout=timeout):
            worker = conns[ready]
            try:
                batch_id, outputs, elapsed = ready.recv()
            except (EOFError, OSError):
                self._revive(worker)
                continue
            batch = worker.outstanding.pop(batch_id)
            results.append(
                BatchResult(batch=batch, outputs=outputs, elapsed_s=elapsed)
            )
        return results

    def collect_all(self, *, poll_s: float = 0.05) -> list[BatchResult]:
        """Block until every outstanding batch has a result."""
        results: list[BatchResult] = []
        while self.outstanding:
            results.extend(self.collect(timeout=poll_s))
        return results

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass
