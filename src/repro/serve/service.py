"""The inference service: queue, micro-batcher, workers and backpressure.

:class:`InferenceService` is the serving front of the repo: it binds one
:class:`~repro.tune.planner.TuningPlan` to derived pruned weights, plans a
coalescing window per layer from the batched timing model, and then answers
``predict`` requests through :class:`~repro.tune.planned.PlannedModel` —
live (a dispatcher thread coalescing queued requests up to each layer's
latency deadline, executing on ``N`` worker processes) or offline
(:meth:`~InferenceService.replay`, a deterministic pure path through the
sweep runner whose outputs are byte-identical at any worker count).

Deadline semantics: the timing model predicts GPU execution times while the
functional engines run on the host, so the modelled per-batch time is
re-scaled at :meth:`~InferenceService.start` by a measured calibration pass
(one warm batch per layer through the real engine — which also pre-warms
the prepared-weight caches the forked workers inherit).  The calibrated
deadline ≈ the host-time cost of one full batch, so a request's worst-case
latency stays within roughly two batch service times.

Backpressure: the micro-batcher's queue is bounded in total coalesced
columns; a ``submit`` beyond the bound raises
:class:`ServiceOverloadedError` immediately (explicit reject — accepted
requests are never shed).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..eval.runner import SweepRunner
from ..tune.measure import RecordedRefiner
from ..tune.planner import TuningPlan
from .batcher import MicroBatcher, QueueFullError, serving_windows
from .cells import (
    SERVE_TASK,
    PredictRequest,
    PredictResponse,
    ServeBatch,
    _runtime_for,
    execute_serve_batches,
)

__all__ = [
    "DEFAULT_WEIGHT_SEED",
    "ServiceOverloadedError",
    "PendingPrediction",
    "ServiceStats",
    "InferenceService",
]

#: Weight seed the service derives pruned tensors from unless told otherwise.
DEFAULT_WEIGHT_SEED = 2024


class ServiceOverloadedError(RuntimeError):
    """Raised by ``submit`` when the bounded request queue is full."""


@dataclass
class PendingPrediction:
    """A submitted request awaiting its response (a minimal future)."""

    request: PredictRequest
    submitted_at: float
    response: PredictResponse | None = None
    _event: threading.Event = field(default_factory=threading.Event)

    def resolve(self, response: PredictResponse) -> None:
        """Deliver the response and wake any waiter."""
        self.response = response
        self._event.set()

    def result(self, timeout: float | None = None) -> PredictResponse:
        """Block until the response arrives (``TimeoutError`` otherwise)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id!r} not served in time"
            )
        assert self.response is not None
        return self.response


@dataclass
class ServiceStats:
    """Serving counters accumulated over the service lifetime."""

    served: int = 0
    rejected: int = 0
    batches: int = 0
    latencies_s: list[float] = field(default_factory=list)
    batch_widths: list[int] = field(default_factory=list)

    def percentile_latency_s(self, percentile: float) -> float:
        """Latency percentile over every served request (0 when none)."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), percentile))

    @property
    def mean_batch_width(self) -> float:
        """Average coalesced width of the dispatched batches (0 when none)."""
        if not self.batch_widths:
            return 0.0
        return float(np.mean(self.batch_widths))

    def to_dict(self) -> dict:
        """JSON-friendly summary (the benchmark's per-mode block)."""
        return {
            "served": self.served,
            "rejected": self.rejected,
            "batches": self.batches,
            "mean_batch_width": self.mean_batch_width,
            "p50_latency_ms": self.percentile_latency_s(50) * 1e3,
            "p99_latency_ms": self.percentile_latency_s(99) * 1e3,
        }


class InferenceService:
    """Serve ``predict`` requests through a tuning plan.

    Parameters
    ----------
    plan:
        The tuned per-layer kernel assignment to serve.
    weight_seed:
        Seed of the derived pruned weights (the serving state is a pure
        function of ``(plan, weight_seed)``).
    workers:
        Worker processes; ``0`` executes batches inline on the dispatcher
        thread (useful for tests and tiny deployments).
    width / deadline_s:
        Optional overrides of the per-layer coalescing windows; by default
        the width is the timing model's throughput argmax and the deadline
        its calibrated batch time (see module docstring).
    max_pending:
        Queue bound in total coalesced columns; beyond it ``submit`` raises
        :class:`ServiceOverloadedError`.
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        plan: TuningPlan,
        *,
        weight_seed: int = DEFAULT_WEIGHT_SEED,
        workers: int = 0,
        width: int | None = None,
        deadline_s: float | None = None,
        max_pending: int = 256,
        clock=time.monotonic,
    ) -> None:
        self.plan = plan
        self.weight_seed = int(weight_seed)
        self.workers = int(workers)
        self._explicit_deadline = deadline_s
        self.windows = serving_windows(plan, width=width, deadline_s=deadline_s)
        if not self.windows:
            raise ValueError("the plan has no linear layers to serve")
        self.stats = ServiceStats()
        self._clock = clock
        self._condition = threading.Condition()
        self._batcher = MicroBatcher(self.windows, max_pending=max_pending)
        self._waiting: dict[int, PendingPrediction] = {}
        self._inflight: dict[int, tuple[ServeBatch, list[PendingPrediction]]] = {}
        self._backlog: deque[list[PredictRequest]] = deque()
        self._recorded: dict[str, list[float]] = {}
        self._calibration: dict[str, float] = {}
        self._next_batch_id = 0
        self._pool = None
        self._dispatcher: threading.Thread | None = None
        self._stopping = False
        self._started = False

    # ------------------------------ lifecycle ---------------------------- #
    def start(self) -> "InferenceService":
        """Warm the runtime, calibrate deadlines, spawn workers, go live."""
        if self._started:
            return self
        model, weights = _runtime_for(self.plan, self.weight_seed)
        for layer, window in list(self.windows.items()):
            shape = model.layers[layer].gemm
            probe = PredictRequest.from_array(
                layer, np.ones((shape.k, window.width))
            )
            batch = ServeBatch(
                plan=self.plan,
                weight_seed=self.weight_seed,
                layer=layer,
                requests=(probe,),
            )
            # First run pays the kernel's prepare (warming the cache the
            # forked workers inherit); the second measures the steady state.
            execute_serve_batches([batch])
            began = time.perf_counter()
            execute_serve_batches([batch])
            host_time = max(time.perf_counter() - began, 1e-9)
            self._calibration[layer] = host_time / window.predicted_batch_time_s
            if self._explicit_deadline is None:
                self.windows[layer] = window.with_deadline(host_time)
        self._batcher.windows = dict(self.windows)
        if self.workers > 0:
            from .pool import WorkerPool

            self._pool = WorkerPool(self.workers)
        self._stopping = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._dispatcher.start()
        self._started = True
        return self

    def stop(self) -> None:
        """Drain the queue, serve everything accepted, shut workers down."""
        if not self._started:
            return
        with self._condition:
            self._stopping = True
            self._condition.notify_all()
        assert self._dispatcher is not None
        self._dispatcher.join()
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._started = False

    def __enter__(self) -> "InferenceService":
        """Context-manager entry: start the service."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: drain and stop."""
        self.stop()

    # ------------------------------ live path ---------------------------- #
    def submit(self, request: PredictRequest) -> PendingPrediction:
        """Enqueue one request; raises on unknown layers or a full queue."""
        with self._condition:
            now = self._clock()
            try:
                self._batcher.push(request, now)
            except QueueFullError as exc:
                self.stats.rejected += 1
                raise ServiceOverloadedError(str(exc)) from exc
            pending = PendingPrediction(request=request, submitted_at=now)
            self._waiting[id(request)] = pending
            self._condition.notify_all()
            return pending

    def predict(
        self, request: PredictRequest, *, timeout: float | None = None
    ) -> PredictResponse:
        """Submit one request and block for its response."""
        return self.submit(request).result(timeout)

    def _dispatch_loop(self) -> None:
        # With a pool, at most ONE batch per worker is in flight at once; the
        # rest wait in the dispatcher's backlog.  The bound is what makes the
        # blocking pipe sends safe: a submit then always targets a worker
        # sitting idle in recv, so the batch pickle drains no matter how
        # large, and a worker blocked sending an oversized result is never
        # sent more work while the dispatcher comes around to collect it.
        # Anything looser deadlocks once a batch or result pickle exceeds
        # the OS socket buffer (parent wedged sending work, worker wedged
        # sending results, nobody collecting).
        max_inflight = self.workers if self.workers > 0 else 1
        while True:
            with self._condition:
                now = self._clock()
                if self._stopping:
                    self._backlog.extend(self._batcher.drain())
                else:
                    self._backlog.extend(self._batcher.poll(now))
                idle = not self._backlog and not self._inflight
                if idle and not self._stopping:
                    deadline = self._batcher.next_deadline()
                    timeout = (
                        max(0.0, deadline - now) if deadline is not None else None
                    )
                    self._condition.wait(timeout=timeout)
                    continue
            while self._backlog and len(self._inflight) < max_inflight:
                self._dispatch(self._backlog.popleft())
            if self._pool is not None and self._inflight:
                for result in self._pool.collect(timeout=0.005):
                    self._complete(result.batch, result.outputs, result.elapsed_s)
            with self._condition:
                if (
                    self._stopping
                    and self._batcher.pending == 0
                    and not self._backlog
                    and not self._inflight
                ):
                    return

    def _dispatch(self, requests: list[PredictRequest]) -> None:
        with self._condition:
            batch_id = self._next_batch_id
            self._next_batch_id += 1
            batch = ServeBatch(
                plan=self.plan,
                weight_seed=self.weight_seed,
                layer=requests[0].layer,
                requests=tuple(requests),
                batch_id=batch_id,
            )
            pendings = [self._waiting.pop(id(request)) for request in requests]
            self._inflight[batch_id] = (batch, pendings)
        if self._pool is not None:
            self._pool.submit(batch)
            return
        began = time.perf_counter()
        record = execute_serve_batches([batch])[0]
        elapsed = time.perf_counter() - began
        self._complete(batch, record.outputs, elapsed)

    def _complete(
        self,
        batch: ServeBatch,
        outputs: tuple[np.ndarray, ...],
        elapsed_s: float,
    ) -> None:
        with self._condition:
            _, pendings = self._inflight.pop(batch.batch_id)
            now = self._clock()
            self.stats.batches += 1
            self.stats.batch_widths.append(batch.width)
            self._recorded.setdefault(batch.layer, []).append(elapsed_s)
            for request, output, pending in zip(
                batch.requests, outputs, pendings, strict=True
            ):
                latency = now - pending.submitted_at
                self.stats.served += 1
                self.stats.latencies_s.append(latency)
                pending.resolve(
                    PredictResponse(
                        request_id=request.request_id,
                        layer=request.layer,
                        output=output,
                        width=batch.width,
                        latency_s=latency,
                    )
                )

    # ----------------------------- replay path --------------------------- #
    def replay(
        self,
        requests: list[PredictRequest],
        *,
        jobs: int = 1,
        cache_dir=None,
    ) -> list[PredictResponse]:
        """Serve a whole recorded request stream deterministically.

        Batch composition is a pure function of the request order and the
        serving windows (:func:`~repro.serve.batcher.replay_batches`), and
        execution runs through the sweep runner's cached
        ``contiguous_process_map`` — so the responses are byte-identical at
        any ``jobs`` count, and a ``cache_dir`` makes warm re-runs free.
        Responses come back in the order of ``requests``; latency is
        ``None`` (the replay path is pure and unclocked).
        """
        from .batcher import replay_batches

        grouped = replay_batches(requests, self.windows)
        batches = [
            ServeBatch(
                plan=self.plan,
                weight_seed=self.weight_seed,
                layer=group[0].layer,
                requests=tuple(group),
                batch_id=index,
            )
            for index, group in enumerate(grouped)
        ]
        runner = SweepRunner(jobs=jobs, cache_dir=cache_dir)
        result = runner.run_cells(batches, SERVE_TASK)
        by_identity: dict[int, PredictResponse] = {}
        for record in result.records:
            for request, output in zip(
                record.config.requests, record.outputs, strict=True
            ):
                by_identity[id(request)] = PredictResponse(
                    request_id=request.request_id,
                    layer=request.layer,
                    output=output,
                    width=record.config.width,
                )
        return [by_identity[id(request)] for request in requests]

    # ------------------------------ telemetry ---------------------------- #
    def recorded_times(self) -> dict[str, float]:
        """Median measured host seconds per dispatched batch, per layer."""
        return {
            layer: float(np.median(np.asarray(times)))
            for layer, times in sorted(self._recorded.items())
        }

    def recorded_refiner(self) -> RecordedRefiner:
        """The measured per-layer times as a planner refinement hook.

        Host medians are re-scaled back to the timing model's clock through
        the calibration factors, so a re-plan can compare them against the
        analytical estimates of candidates that never served (ROADMAP's
        online-autotuning direction).
        """
        records = []
        for layer, median in self.recorded_times().items():
            scale = self._calibration.get(layer, 1.0)
            label = self.plan.assignment_for(layer).label
            records.append(((layer, label), median / scale))
        return RecordedRefiner(records=tuple(records))
