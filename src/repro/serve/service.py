"""The inference service: queue, micro-batcher, workers and backpressure.

:class:`InferenceService` is the serving front of the repo: it binds one
:class:`~repro.tune.planner.TuningPlan` to derived pruned weights, plans a
coalescing window per layer from the batched timing model, and then answers
``predict`` requests through :class:`~repro.tune.planned.PlannedModel` —
live (a dispatcher thread coalescing queued requests up to each layer's
latency deadline, executing on ``N`` worker processes) or offline
(:meth:`~InferenceService.replay`, a deterministic pure path through the
sweep runner whose outputs are byte-identical at any worker count).

Deadline semantics: the timing model predicts GPU execution times while the
functional engines run on the host, so the modelled per-batch time is
re-scaled at :meth:`~InferenceService.start` by a measured calibration pass
(one warm batch per layer through the real engine — which also pre-warms
the prepared-weight caches the forked workers inherit).  The calibrated
deadline ≈ the host-time cost of one full batch, so a request's worst-case
latency stays within roughly two batch service times.

Backpressure: the micro-batcher's queue is bounded in total coalesced
columns; a ``submit`` beyond the bound raises
:class:`ServiceOverloadedError` immediately (explicit reject — accepted
requests are never shed).

Failure semantics: every *accepted* request gets exactly one response —
success or a structured error.  Worker-side executor exceptions come back
as error responses (never a dead worker); a batch that crashes workers past
the pool's retry budget is quarantined and answered with errors; requests
carrying their own ``deadline_s`` are shed before dispatch once expired; a
pool whose workers keep dying trips the circuit breaker and the service
degrades to inline dispatcher execution; and ``stop(timeout=...)`` is
bounded — it escalates worker shutdown and resolves anything still
unanswered with shutdown errors, reporting what it shed.  All of it is
fault-injectable through :class:`~repro.serve.faults.FaultPlan` and counted
in :class:`ServiceStats`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..eval.runner import SweepRunner
from ..tune.measure import RecordedRefiner
from ..tune.planner import TuningPlan
from .batcher import MicroBatcher, QueueFullError, serving_windows
from .cells import (
    SERVE_TASK,
    PredictRequest,
    PredictResponse,
    ServeBatch,
    _runtime_for,
    execute_serve_batches,
)
from .faults import BatchError, FaultPlan

__all__ = [
    "DEFAULT_WEIGHT_SEED",
    "ServiceOverloadedError",
    "PendingPrediction",
    "ServiceStats",
    "InferenceService",
]

#: Weight seed the service derives pruned tensors from unless told otherwise.
DEFAULT_WEIGHT_SEED = 2024


class ServiceOverloadedError(RuntimeError):
    """Raised by ``submit`` when the bounded request queue is full."""


@dataclass
class PendingPrediction:
    """A submitted request awaiting its response (a minimal future).

    ``result(timeout=...)`` that times out *cancels* the queued request:
    the queue slot is reclaimed, ``stats.expired`` is incremented exactly
    once, and the request is never served or counted later.  A request
    already coalesced into an in-flight batch can no longer be withdrawn —
    it will be answered normally and later ``result()`` calls return that
    response.
    """

    request: PredictRequest
    submitted_at: float
    response: PredictResponse | None = None
    cancelled: bool = False
    _event: threading.Event = field(default_factory=threading.Event)
    _canceller: Callable[["PendingPrediction"], bool] | None = field(
        default=None, repr=False
    )

    def resolve(self, response: PredictResponse) -> None:
        """Deliver the response and wake any waiter (first resolve wins)."""
        if self.response is None:
            self.response = response
        self._event.set()

    def cancel(self) -> bool:
        """Withdraw the request if it is still queued (idempotent).

        True when this call reclaimed the queue slot; False when the
        request was already dispatched, resolved, or cancelled earlier.
        """
        if self._canceller is None:
            return False
        if self._canceller(self):
            self.cancelled = True
            self._event.set()
            return True
        return False

    def result(self, timeout: float | None = None) -> PredictResponse:
        """Block until the response arrives (``TimeoutError`` otherwise).

        A timeout cancels the queued request before raising, so the slot
        is reclaimed instead of being served to nobody (see the class
        docstring for the in-flight caveat).
        """
        if not self._event.wait(timeout):
            self.cancel()
            raise TimeoutError(
                f"request {self.request.request_id!r} not served in time"
            )
        if self.cancelled or self.response is None:
            raise TimeoutError(
                f"request {self.request.request_id!r} was cancelled after "
                "timing out"
            )
        return self.response


@dataclass
class ServiceStats:
    """Serving counters accumulated over the service lifetime.

    Besides the happy-path counters, the failure half of the story:
    ``retried`` batch resubmissions after worker deaths, ``quarantined``
    poison batches isolated past the retry budget, ``errors`` batches
    answered with executor-error responses, ``expired`` requests shed on
    their deadlines (before dispatch or via ``result(timeout=...)``
    cancellation), and ``degraded`` batches executed inline after the
    worker pool's circuit breaker tripped.
    """

    served: int = 0
    rejected: int = 0
    batches: int = 0
    retried: int = 0
    quarantined: int = 0
    errors: int = 0
    expired: int = 0
    degraded: int = 0
    latencies_s: list[float] = field(default_factory=list)
    batch_widths: list[int] = field(default_factory=list)

    def percentile_latency_s(self, percentile: float) -> float:
        """Latency percentile over every served request (0 when none)."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), percentile))

    @property
    def mean_batch_width(self) -> float:
        """Average coalesced width of the dispatched batches (0 when none)."""
        if not self.batch_widths:
            return 0.0
        return float(np.mean(self.batch_widths))

    def to_dict(self) -> dict:
        """JSON-friendly summary (the benchmark's per-mode block)."""
        return {
            "served": self.served,
            "rejected": self.rejected,
            "batches": self.batches,
            "retried": self.retried,
            "quarantined": self.quarantined,
            "errors": self.errors,
            "expired": self.expired,
            "degraded": self.degraded,
            "mean_batch_width": self.mean_batch_width,
            "p50_latency_ms": self.percentile_latency_s(50) * 1e3,
            "p99_latency_ms": self.percentile_latency_s(99) * 1e3,
        }


class InferenceService:
    """Serve ``predict`` requests through a tuning plan.

    Parameters
    ----------
    plan:
        The tuned per-layer kernel assignment to serve.
    weight_seed:
        Seed of the derived pruned weights (the serving state is a pure
        function of ``(plan, weight_seed)``).
    workers:
        Worker processes; ``0`` executes batches inline on the dispatcher
        thread (useful for tests and tiny deployments).
    width / deadline_s:
        Optional overrides of the per-layer coalescing windows; by default
        the width is the timing model's throughput argmax and the deadline
        its calibrated batch time (see module docstring).
    max_pending:
        Queue bound in total coalesced columns; beyond it ``submit`` raises
        :class:`ServiceOverloadedError`.
    max_retries / hang_timeout_s / breaker_threshold / backoff_base_s:
        The worker pool's recovery budget — crash retries per batch before
        quarantine, silence before a worker is declared hung, consecutive
        deaths before the circuit breaker degrades the service to inline
        execution, and the respawn backoff base (see
        :class:`~repro.serve.pool.WorkerPool`).
    fault_plan:
        Optional deterministic fault-injection schedule
        (:class:`~repro.serve.faults.FaultPlan`; chaos testing only).
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        plan: TuningPlan,
        *,
        weight_seed: int = DEFAULT_WEIGHT_SEED,
        workers: int = 0,
        width: int | None = None,
        deadline_s: float | None = None,
        max_pending: int = 256,
        max_retries: int = 2,
        hang_timeout_s: float | None = 30.0,
        breaker_threshold: int = 8,
        backoff_base_s: float = 0.05,
        fault_plan: FaultPlan | None = None,
        clock=time.monotonic,
    ) -> None:
        self.plan = plan
        self.weight_seed = int(weight_seed)
        self.workers = int(workers)
        self.max_retries = int(max_retries)
        self.hang_timeout_s = hang_timeout_s
        self.breaker_threshold = int(breaker_threshold)
        self.backoff_base_s = float(backoff_base_s)
        self.fault_plan = fault_plan
        self._explicit_deadline = deadline_s
        self.windows = serving_windows(plan, width=width, deadline_s=deadline_s)
        if not self.windows:
            raise ValueError("the plan has no linear layers to serve")
        from ..tune.planned import PlannedModel

        _layers = PlannedModel(plan).layers
        self._expected_rows = {
            layer: _layers[layer].gemm.k for layer in self.windows
        }
        self.stats = ServiceStats()
        self._clock = clock
        self._condition = threading.Condition()
        self._batcher = MicroBatcher(self.windows, max_pending=max_pending)
        self._waiting: dict[int, PendingPrediction] = {}
        self._inflight: dict[int, tuple[ServeBatch, list[PendingPrediction]]] = {}
        self._backlog: deque[list[PredictRequest]] = deque()
        self._recorded: dict[str, list[float]] = {}
        self._calibration: dict[str, float] = {}
        self._next_batch_id = 0
        self._pool = None
        self._dispatcher: threading.Thread | None = None
        self._stopping = False
        self._abort = False
        self._degraded = False
        self._started = False

    # ------------------------------ lifecycle ---------------------------- #
    def start(self) -> "InferenceService":
        """Warm the runtime, calibrate deadlines, spawn workers, go live."""
        if self._started:
            return self
        model, weights = _runtime_for(self.plan, self.weight_seed)
        for layer, window in list(self.windows.items()):
            shape = model.layers[layer].gemm
            probe = PredictRequest.from_array(
                layer, np.ones((shape.k, window.width))
            )
            batch = ServeBatch(
                plan=self.plan,
                weight_seed=self.weight_seed,
                layer=layer,
                requests=(probe,),
            )
            # First run pays the kernel's prepare (warming the cache the
            # forked workers inherit); the second measures the steady state.
            execute_serve_batches([batch])
            began = time.perf_counter()
            execute_serve_batches([batch])
            host_time = max(time.perf_counter() - began, 1e-9)
            self._calibration[layer] = host_time / window.predicted_batch_time_s
            if self._explicit_deadline is None:
                self.windows[layer] = window.with_deadline(host_time)
        self._batcher.windows = dict(self.windows)
        if self.workers > 0:
            from .pool import WorkerPool

            self._pool = WorkerPool(
                self.workers,
                max_retries=self.max_retries,
                hang_timeout_s=self.hang_timeout_s,
                breaker_threshold=self.breaker_threshold,
                backoff_base_s=self.backoff_base_s,
                fault_plan=self.fault_plan,
            )
        self._stopping = False
        self._abort = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._dispatcher.start()
        self._started = True
        return self

    def stop(self, timeout: float | None = None) -> dict:
        """Drain and shut down, bounded by ``timeout`` seconds when given.

        ``timeout=None`` keeps the original graceful contract: every
        accepted request is served before the workers shut down.  With a
        timeout the stop is *bounded*: the dispatcher gets ``timeout``
        seconds to drain; if it is still wedged (e.g. a hung worker with
        hang detection disabled) the loop is aborted, everything still
        unanswered is resolved with shutdown error responses, and worker
        shutdown escalates join → terminate → kill.  Returns a report:
        ``{"shed": <requests resolved with shutdown errors>, "clean":
        <True when the drain finished in time>, "pool": <escalation
        counts>}``.
        """
        report: dict = {
            "shed": 0,
            "clean": True,
            "pool": {"joined": 0, "terminated": 0, "killed": 0},
        }
        if not self._started:
            return report
        with self._condition:
            self._stopping = True
            self._condition.notify_all()
        assert self._dispatcher is not None
        self._dispatcher.join(timeout)
        if self._dispatcher.is_alive():
            report["clean"] = False
            self._abort = True
            with self._condition:
                self._condition.notify_all()
            self._dispatcher.join(timeout=1.0)
            report["shed"] = self._shed_unanswered()
        if self._pool is not None:
            report["pool"] = self._pool.close(
                timeout=5.0 if timeout is None else max(timeout, 0.1)
            )
            self._pool = None
        self._dispatcher = None
        self._abort = False
        self._started = False
        return report

    def _shed_unanswered(self) -> int:
        """Resolve every still-unanswered request with a shutdown error."""
        with self._condition:
            pendings = list(self._waiting.values())
            self._waiting.clear()
            for _, batch_pendings in self._inflight.values():
                pendings.extend(batch_pendings)
            self._inflight.clear()
            self._backlog.clear()
            self._batcher.drain()
            now = self._clock()
            shed = 0
            for pending in pendings:
                if pending.response is not None or pending.cancelled:
                    continue
                shed += 1
                pending.resolve(
                    PredictResponse(
                        request_id=pending.request.request_id,
                        layer=pending.request.layer,
                        output=None,
                        width=0,
                        latency_s=now - pending.submitted_at,
                        error="[shutdown] service stopped before the request "
                        "was served",
                    )
                )
            return shed

    def __enter__(self) -> "InferenceService":
        """Context-manager entry: start the service."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: drain and stop."""
        self.stop()

    # ------------------------------ live path ---------------------------- #
    def submit(self, request: PredictRequest) -> PendingPrediction:
        """Enqueue one request.

        Raises ``KeyError`` for unknown layers, ``ValueError`` when the
        activation row count does not match the layer's input width (a
        mis-shaped request would poison every companion coalesced into its
        batch, so it is rejected at the gate), and
        :class:`ServiceOverloadedError` when the queue is full.
        """
        self.validate(request)
        with self._condition:
            now = self._clock()
            try:
                self._batcher.push(request, now)
            except QueueFullError as exc:
                self.stats.rejected += 1
                raise ServiceOverloadedError(str(exc)) from exc
            pending = PendingPrediction(
                request=request,
                submitted_at=now,
                _canceller=self._cancel_pending,
            )
            self._waiting[id(request)] = pending
            self._condition.notify_all()
            return pending

    def predict(
        self, request: PredictRequest, *, timeout: float | None = None
    ) -> PredictResponse:
        """Submit one request and block for its response."""
        return self.submit(request).result(timeout)

    def validate(self, request: PredictRequest) -> None:
        """Reject requests whose activations cannot join the layer's batch.

        ``KeyError`` for a layer the plan does not serve; ``ValueError``
        when the activation row count does not match the layer's input
        width.  Both :meth:`submit` and the CLI transports call this at
        the gate so one mis-shaped request can never poison the batch it
        would have been coalesced into.
        """
        expected = self._expected_rows.get(request.layer)
        if expected is None:
            raise KeyError(f"no serving window for layer {request.layer!r}")
        if request.rows != expected:
            raise ValueError(
                f"layer {request.layer!r} expects K={expected} activation "
                f"rows, got {request.rows}"
            )

    def _cancel_pending(self, pending: PendingPrediction) -> bool:
        """Withdraw a queued request (the ``result`` timeout path).

        Succeeds only while the request still sits in the micro-batcher:
        the slot is reclaimed from ``_waiting`` *and* the queue, and
        ``stats.expired`` is incremented exactly once.  Once the request is
        in the dispatch backlog or in flight the withdrawal fails and the
        request is answered normally.
        """
        with self._condition:
            key = id(pending.request)
            if key not in self._waiting:
                return False
            if not self._batcher.remove(pending.request):
                return False
            del self._waiting[key]
            self.stats.expired += 1
            return True

    def _dispatch_loop(self) -> None:
        # With a pool, at most ONE batch per worker is in flight at once; the
        # rest wait in the dispatcher's backlog.  The bound is what makes the
        # blocking pipe sends safe: a submit then always targets a worker
        # sitting idle in recv, so the batch pickle drains no matter how
        # large, and a worker blocked sending an oversized result is never
        # sent more work while the dispatcher comes around to collect it.
        # Anything looser deadlocks once a batch or result pickle exceeds
        # the OS socket buffer (parent wedged sending work, worker wedged
        # sending results, nobody collecting).
        max_inflight = self.workers if self.workers > 0 else 1
        while True:
            if self._abort:
                return
            with self._condition:
                now = self._clock()
                self._shed_expired_locked(now)
                if self._stopping:
                    self._backlog.extend(self._batcher.drain())
                else:
                    due = self._batcher.poll(now)  # staticcheck: ignore[SC007] -- in-memory poll
                    self._backlog.extend(due)
                idle = not self._backlog and not self._inflight
                if idle and not self._stopping:
                    deadline = self._batcher.next_deadline()
                    timeout = (
                        max(0.0, deadline - now) if deadline is not None else None
                    )
                    self._condition.wait(timeout=timeout)
                    continue
            while self._backlog and len(self._inflight) < max_inflight:
                self._dispatch(self._backlog.popleft())
            if self._pool is not None and self._inflight:
                for result in self._pool.collect(timeout=0.005):
                    if result.error is not None:
                        self._complete_error(result.batch, result.error)
                    else:
                        self._complete(
                            result.batch, result.outputs, result.elapsed_s
                        )
                self.stats.retried = self._pool.retried
                if self._pool.broken:
                    self._degrade()
            with self._condition:
                if (
                    self._stopping
                    and self._batcher.pending == 0
                    and not self._backlog
                    and not self._inflight
                ):
                    return

    def _shed_expired_locked(self, now: float) -> None:
        """Shed queued requests whose own deadline passed (lock held)."""
        for request in self._batcher.shed_expired(now):
            pending = self._waiting.pop(id(request), None)
            if pending is None:
                continue
            self.stats.expired += 1
            pending.resolve(
                PredictResponse(
                    request_id=request.request_id,
                    layer=request.layer,
                    output=None,
                    width=0,
                    latency_s=now - pending.submitted_at,
                    error=(
                        f"[expired] deadline_s={request.deadline_s} passed "
                        "before dispatch"
                    ),
                )
            )

    def _degrade(self) -> None:
        """Circuit breaker tripped: reclaim the pool's work, go inline.

        The pool stops existing; every unfinished batch (and everything
        dispatched from now on) executes inline on the dispatcher thread —
        slower, but alive.  Counted per batch in ``stats.degraded``.
        """
        assert self._pool is not None
        leftover = self._pool.abandon()
        self._pool.close(timeout=5.0)
        self._pool = None
        self._degraded = True
        for batch in leftover:
            self._execute_inline(batch)

    def _dispatch(self, requests: list[PredictRequest]) -> None:
        with self._condition:
            batch_id = self._next_batch_id
            self._next_batch_id += 1
            batch = ServeBatch(
                plan=self.plan,
                weight_seed=self.weight_seed,
                layer=requests[0].layer,
                requests=tuple(requests),
                batch_id=batch_id,
            )
            pendings = [self._waiting.pop(id(request)) for request in requests]
            self._inflight[batch_id] = (batch, pendings)
        if self._pool is not None:
            self._pool.submit(batch)
            return
        self._execute_inline(batch)

    def _execute_inline(self, batch: ServeBatch) -> None:
        """Run one batch on the dispatcher thread (no pool, or degraded).

        Executor exceptions become structured error responses here too, so
        a poison batch cannot kill the dispatcher thread.
        """
        began = time.perf_counter()
        try:
            record = execute_serve_batches([batch])[0]
        except Exception as exc:
            self._complete_error(
                batch,
                BatchError(
                    batch_id=batch.batch_id,
                    kind="executor",
                    message=f"{type(exc).__name__}: {exc}",
                ),
            )
            return
        elapsed = time.perf_counter() - began
        if self._degraded:
            self.stats.degraded += 1
        self._complete(batch, record.outputs, elapsed)

    def _complete(
        self,
        batch: ServeBatch,
        outputs: tuple[np.ndarray, ...],
        elapsed_s: float,
    ) -> None:
        with self._condition:
            entry = self._inflight.pop(batch.batch_id, None)
            if entry is None:
                return  # already shed by a bounded stop
            _, pendings = entry
            now = self._clock()
            self.stats.batches += 1
            self.stats.batch_widths.append(batch.width)
            self._recorded.setdefault(batch.layer, []).append(elapsed_s)
            for request, output, pending in zip(
                batch.requests, outputs, pendings, strict=True
            ):
                latency = now - pending.submitted_at
                self.stats.served += 1
                self.stats.latencies_s.append(latency)
                pending.resolve(
                    PredictResponse(
                        request_id=request.request_id,
                        layer=request.layer,
                        output=output,
                        width=batch.width,
                        latency_s=latency,
                    )
                )

    def _complete_error(self, batch: ServeBatch, error: BatchError) -> None:
        """Answer every request of a failed batch with a structured error."""
        with self._condition:
            entry = self._inflight.pop(batch.batch_id, None)
            if entry is None:
                return  # already shed by a bounded stop
            _, pendings = entry
            now = self._clock()
            self.stats.batches += 1
            if error.kind == "quarantined":
                self.stats.quarantined += 1
            else:
                self.stats.errors += 1
            for request, pending in zip(batch.requests, pendings, strict=True):
                pending.resolve(
                    PredictResponse(
                        request_id=request.request_id,
                        layer=request.layer,
                        output=None,
                        width=batch.width,
                        latency_s=now - pending.submitted_at,
                        error=error.describe(),
                    )
                )

    # ----------------------------- replay path --------------------------- #
    def replay(
        self,
        requests: list[PredictRequest],
        *,
        jobs: int = 1,
        cache_dir=None,
    ) -> list[PredictResponse]:
        """Serve a whole recorded request stream deterministically.

        Batch composition is a pure function of the request order and the
        serving windows (:func:`~repro.serve.batcher.replay_batches`), and
        execution runs through the sweep runner's cached
        ``contiguous_process_map`` — so the responses are byte-identical at
        any ``jobs`` count, and a ``cache_dir`` makes warm re-runs free.
        Responses come back in the order of ``requests``; latency is
        ``None`` (the replay path is pure and unclocked).
        """
        from .batcher import replay_batches

        grouped = replay_batches(requests, self.windows)
        batches = [
            ServeBatch(
                plan=self.plan,
                weight_seed=self.weight_seed,
                layer=group[0].layer,
                requests=tuple(group),
                batch_id=index,
            )
            for index, group in enumerate(grouped)
        ]
        runner = SweepRunner(jobs=jobs, cache_dir=cache_dir)
        result = runner.run_cells(batches, SERVE_TASK)
        by_identity: dict[int, PredictResponse] = {}
        for record in result.records:
            for request, output in zip(
                record.config.requests, record.outputs, strict=True
            ):
                by_identity[id(request)] = PredictResponse(
                    request_id=request.request_id,
                    layer=request.layer,
                    output=output,
                    width=record.config.width,
                )
        return [by_identity[id(request)] for request in requests]

    # ------------------------------ telemetry ---------------------------- #
    def recorded_times(self) -> dict[str, float]:
        """Median measured host seconds per dispatched batch, per layer."""
        return {
            layer: float(np.median(np.asarray(times)))
            for layer, times in sorted(self._recorded.items())
        }

    def recorded_refiner(self) -> RecordedRefiner:
        """The measured per-layer times as a planner refinement hook.

        Host medians are re-scaled back to the timing model's clock through
        the calibration factors, so a re-plan can compare them against the
        analytical estimates of candidates that never served (ROADMAP's
        online-autotuning direction).
        """
        records = []
        for layer, median in self.recorded_times().items():
            scale = self._calibration.get(layer, 1.0)
            label = self.plan.assignment_for(layer).label
            records.append(((layer, label), median / scale))
        return RecordedRefiner(records=tuple(records))
