"""The Shfl-BW SpMM and convolution kernels (the paper's contribution).

The kernel executes exactly the vector-wise pipeline — stitched tensor-core
tiles over the kept columns of each ``V``-row group — with two additions that
make the *shuffled* pattern free at runtime (Section 4):

* **reordered write-back** (Section 4.2): the weight matrix is stored in its
  permuted, vector-wise form; the original row indices ride along as metadata
  and the output tile is scattered straight to the original rows at the end of
  the kernel.  Cost: ``M`` extra index loads for the whole kernel (buffered in
  shared memory) and an indexed store — negligible, which is why the paper
  measures Shfl-BW at 0.97-1.02x of plain vector-wise.
* **metadata prefetching** (Section 4.4): column indices for
  ``MetaPrefetchStage`` future tiles are loaded in bulk so the in-buffer
  stitching never stalls on the index stream.  The ``prefetch_metadata`` knob
  exposes the ablation.

The convolution variant lowers a pruned convolution onto the same kernel with
the implicit-GEMM transformation (Section 4.1).
"""

from __future__ import annotations

import numpy as np

from ..core.pattern import PatternKind
from ..gpu.arch import GPUArch
from ..gpu.memory import BYTES_INDEX, TrafficBatch, TrafficBreakdown
from ..gpu.simulator import KernelLaunch, LaunchBatch
from ..gpu.tensorcore import ceil_div_array
from ..sparse.convert import dense_to_shflbw
from ..sparse.formats import ShflBWMatrix
from ..sparse.spconv import Conv2dSpec, conv2d_sparse
from ..sparse.spmm import spmm_shflbw
from .base import GEMMShape, shape_arrays
from .vector_wise import VectorWiseKernel

__all__ = ["ShflBWKernel", "ShflBWConvKernel"]


class ShflBWKernel(VectorWiseKernel):
    """Tensor-core SpMM for the Shfl-BW pattern."""

    name = "shfl-bw"
    pattern = PatternKind.SHFLBW
    supports_conv = True

    compute_efficiency = 0.80
    bandwidth_efficiency = 0.85

    def __init__(
        self,
        vector_size: int = 32,
        *,
        prefetch_metadata: bool = True,
        meta_prefetch_steps: int = 4,
        reordered_write_back: bool = True,
    ):
        super().__init__(vector_size=vector_size)
        self.prefetch_metadata = prefetch_metadata
        self.meta_prefetch_steps = meta_prefetch_steps
        self.reordered_write_back = reordered_write_back

    @property
    def label(self) -> str:
        return f"Shfl-BW,V={self.vector_size}"

    # -------------------------- functional side -------------------------- #
    def prepare(self, weight: np.ndarray, **kwargs) -> ShflBWMatrix:
        """Compress a pruned weight matrix into the Shfl-BW format.

        ``row_indices`` (the witness permutation from the pattern search)
        should be passed whenever available; without it the kernel still works
        but only sees the degenerate vector-wise grouping.
        """
        vector_size = kwargs.get("vector_size", self.vector_size)
        row_indices = kwargs.get("row_indices")
        return dense_to_shflbw(weight, vector_size, row_indices)

    def run(self, prepared: ShflBWMatrix, activations: np.ndarray) -> np.ndarray:
        return spmm_shflbw(prepared, activations, tile_cols=self.stitch_tile_k)

    # -------------------------- performance side ------------------------- #
    def metadata_bytes(self, shape: GEMMShape, density: float, **kwargs) -> float:
        """Column indices (as vector-wise) plus the row-shuffle indices."""
        column_meta = super().metadata_bytes(shape, density, **kwargs)
        row_meta = shape.m * BYTES_INDEX if self.reordered_write_back else 0.0
        return column_meta + row_meta

    def build_launch(
        self, arch: GPUArch, shape: GEMMShape, density: float, **kwargs
    ) -> KernelLaunch:
        launch = super().build_launch(arch, shape, density, **kwargs)
        v = kwargs.get("vector_size", self.vector_size)
        launch.name = f"{self.name}-v{v}"
        launch.prefetch_metadata = self.prefetch_metadata
        launch.meta_prefetch_steps = self.meta_prefetch_steps
        # Replace the metadata stream with the Shfl-BW one (adds the row
        # indices consumed by the reordered write-back).
        meta = TrafficBreakdown()
        meta.add("metadata", self.metadata_bytes(shape, density, vector_size=v))
        launch.meta_traffic = meta
        if not self.reordered_write_back:
            # Ablation: without the fused write-back the kernel writes the
            # permuted output and a second pass scatters it to the original
            # row order — one extra launch plus an extra read+write of C.
            launch.launches += 1
            launch.traffic.add("output-reorder-read", shape.m * shape.n * 2)
            launch.traffic.add(
                "output-reorder-write", shape.m * shape.n * 2, is_write=True
            )
        return launch

    def build_launch_batch(
        self, arch: GPUArch, shapes, densities, **kwargs
    ) -> LaunchBatch:
        """Vectorized :meth:`build_launch`: the vector-wise batch with the
        Shfl-BW metadata stream (column indices + row-shuffle indices)."""
        batch = super().build_launch_batch(arch, shapes, densities, **kwargs)
        v = kwargs.get("vector_size", self.vector_size)
        ms, ns, ks = shape_arrays(shapes)
        densities = np.asarray(densities, dtype=np.float64)
        batch.names = [f"{self.name}-v{v}"] * len(batch)
        batch.prefetch_metadata = np.broadcast_to(
            np.bool_(self.prefetch_metadata), (len(batch),)
        )
        batch.meta_prefetch_steps = np.broadcast_to(
            np.int64(self.meta_prefetch_steps), (len(batch),)
        )
        column_meta = ceil_div_array(ms, v) * (ks * densities) * BYTES_INDEX
        row_meta = ms * BYTES_INDEX if self.reordered_write_back else 0.0
        meta = TrafficBatch(len(ms))
        meta.add("metadata", column_meta + row_meta)
        batch.meta_traffic = meta
        if not self.reordered_write_back:
            batch.launches = batch.launches + 1
            batch.traffic.add("output-reorder-read", ms * ns * 2)
            batch.traffic.add("output-reorder-write", ms * ns * 2, is_write=True)
        return batch


class ShflBWConvKernel(ShflBWKernel):
    """Implicit-GEMM 2-D convolution with Shfl-BW pruned weights."""

    name = "shfl-bw-conv"

    def run_conv(
        self,
        prepared: ShflBWMatrix,
        inputs: np.ndarray,
        spec: Conv2dSpec,
    ) -> np.ndarray:
        """Functional sparse convolution (NCHW input)."""
        return conv2d_sparse(inputs, prepared, spec)

    def conv_matmul(
        self,
        weight: np.ndarray,
        inputs: np.ndarray,
        spec: Conv2dSpec,
        *,
        row_indices: np.ndarray | None = None,
    ) -> np.ndarray:
        """Prune-format-compress + run a convolution in one call.

        ``weight`` is the pruned OIHW tensor; it is reshaped to the implicit
        GEMM layout before compression.
        """
        weight = np.asarray(weight, dtype=np.float64)
        gemm_weight = weight.reshape(weight.shape[0], -1)
        prepared = self.prepare(gemm_weight, row_indices=row_indices)
        return self.run_conv(prepared, inputs, spec)
