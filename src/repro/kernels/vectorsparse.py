"""VectorSparse baseline (Chen et al., SC'21): fine-grained vector-wise SpMM.

VectorSparse targets tensor cores with *small* vectors (``V <= 8``).  The
paper finds it consistently slower than our kernels because the small vector
size caps the output-tile height at 8 rows, which limits data reuse: every
group of 8 weight rows re-gathers its activation columns, so the activation
stream crosses the L2 far more often than with ``V = 32``/``64`` tiles, and
each 8-row MMA fragment wastes half of a 16-row tensor-core instruction.
Both effects fall directly out of the shared timing model — this class only
pins the vector size and a slightly lower sustained efficiency (reduced
precision handling in their kernels).
"""

from __future__ import annotations

from ..core.pattern import PatternKind
from .vector_wise import VectorWiseKernel

__all__ = ["VectorSparseKernel"]


class VectorSparseKernel(VectorWiseKernel):
    """VectorSparse: vector-wise SpMM with ``V = 8`` vectors."""

    name = "vectorsparse"
    pattern = PatternKind.VECTORWISE
    supports_conv = False

    compute_efficiency = 0.65
    bandwidth_efficiency = 0.8

    #: VectorSparse is only compiled/tuned for Volta in the paper's
    #: experiments (Section 6.2).
    supported_archs = ("V100",)

    def __init__(self, vector_size: int = 8):
        if vector_size > 8:
            raise ValueError("VectorSparse supports vector sizes up to 8")
        super().__init__(vector_size=vector_size)

    @property
    def label(self) -> str:
        return f"VectorSparse(VW,V={self.vector_size})"
