"""Unstructured-sparsity SpMM baselines (CUDA cores, no tensor cores).

Two baselines from the paper's evaluation:

* :class:`SputnikKernel` — Gale et al.'s Sputnik, the best published
  unstructured SpMM for DNN sparsity levels; used for the "Cuda-Core Sparse"
  curve of Figure 1 and the "Unstructured" bars of Figure 6,
* :class:`CusparseCSRKernel` — the vendor cuSPARSE CSR SpMM, which needs
  > 98 % sparsity before it beats dense (Section 1).

Both are CUDA-core kernels: unstructured non-zero positions provide no dense
sub-tiles to feed tensor-core MMA instructions, and their activation reuse is
limited by the small row tile a CUDA-core kernel can afford (the
``sqrt(alpha)`` ceiling of Section 3.2.2).
"""

from __future__ import annotations

import numpy as np

from ..core.pattern import PatternKind
from ..gpu.arch import GPUArch
from ..gpu.memory import BYTES_INDEX, TrafficBatch, TrafficBreakdown
from ..gpu.simulator import ComputeUnit, KernelLaunch, LaunchBatch
from ..gpu.tensorcore import ceil_div, ceil_div_array
from ..gpu.tiling import TileConfig
from ..sparse.convert import dense_to_csr
from ..sparse.formats import CSRMatrix
from ..sparse.spmm import spmm_csr
from .base import (
    GEMMShape,
    SpMMKernel,
    activation_traffic,
    activation_traffic_grid,
    merge_traffic,
    merge_traffic_grid,
    output_traffic,
    output_traffic_grid,
    shape_arrays,
    weight_traffic,
    weight_traffic_grid,
)

__all__ = ["SputnikKernel", "CusparseCSRKernel", "unstructured_union_fraction"]


def unstructured_union_fraction(density: float, rows: int) -> float:
    """Expected fraction of activation rows touched by ``rows`` weight rows
    with independent non-zero positions at the given density.

    A tile of ``rows`` unstructured rows needs activation row ``j`` whenever
    *any* of them keeps column ``j``: ``1 - (1 - density) ** rows``.  This is
    what prevents unstructured tiles from reaching block-wise reuse.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    if rows <= 0:
        raise ValueError("rows must be positive")
    return 1.0 - (1.0 - density) ** rows


class _UnstructuredKernel(SpMMKernel):
    """Shared functional/perf structure of the CSR-based baselines."""

    pattern = PatternKind.UNSTRUCTURED
    supports_conv = False

    #: Rows of the sparse matrix processed by one threadblock.
    row_tile = 8
    #: Columns of B per threadblock.
    col_tile = 64
    compute_efficiency = 0.35
    bandwidth_efficiency = 0.75
    activation_access_efficiency = 0.8
    #: The launch description never consults the architecture.
    launch_arch_agnostic = True

    def prepare(self, weight: np.ndarray, **kwargs) -> CSRMatrix:
        return dense_to_csr(weight)

    def run(self, prepared: CSRMatrix, activations: np.ndarray) -> np.ndarray:
        return spmm_csr(prepared, activations)

    def metadata_bytes(self, shape: GEMMShape, density: float, **kwargs) -> float:
        nnz = shape.m * shape.k * density
        return nnz * BYTES_INDEX + (shape.m + 1) * BYTES_INDEX

    def build_launch(
        self, arch: GPUArch, shape: GEMMShape, density: float, **kwargs
    ) -> KernelLaunch:
        tile = TileConfig(
            tile_m=self.row_tile,
            tile_n=min(self.col_tile, max(8, shape.n)),
            tile_k=32,
            threads=128,
            pipeline_stages=2,
        )
        kept = unstructured_union_fraction(density, self.row_tile)
        traffic = merge_traffic(
            weight_traffic(shape, density),
            activation_traffic(
                shape,
                row_tile=self.row_tile,
                kept_fraction=kept,
                access_efficiency=self.activation_access_efficiency,
            ),
            output_traffic(shape),
        )
        meta = TrafficBreakdown()
        meta.add("metadata", self.metadata_bytes(shape, density))
        n_tiles = ceil_div(shape.m, tile.tile_m) * ceil_div(shape.n, tile.tile_n)
        return KernelLaunch(
            name=self.name,
            useful_flops=shape.sparse_flops(density),
            traffic=traffic,
            meta_traffic=meta,
            tile=tile,
            num_tiles=n_tiles,
            k_steps=tile.k_steps(shape.k),
            compute_unit=ComputeUnit.CUDA_CORE,
            compute_efficiency=self.compute_efficiency,
            bandwidth_efficiency=self.bandwidth_efficiency,
            prefetch_metadata=True,
            meta_prefetch_steps=2,
        )

    def build_launch_batch(
        self, arch: GPUArch, shapes, densities, **kwargs
    ) -> LaunchBatch:
        """Vectorized :meth:`build_launch` over whole grids."""
        ms, ns, ks = shape_arrays(shapes)
        densities = np.asarray(densities, dtype=np.float64)
        if np.any((densities <= 0.0) | (densities > 1.0)):
            raise ValueError("density must be in (0, 1]")
        tile_n = np.minimum(self.col_tile, np.maximum(8, ns))
        kept = 1.0 - (1.0 - densities) ** self.row_tile
        row_tiles = ceil_div_array(ms, self.row_tile)
        traffic = merge_traffic_grid(
            weight_traffic_grid(ms, ks, densities),
            activation_traffic_grid(
                ms,
                ns,
                ks,
                row_tile=self.row_tile,
                kept_fraction=kept,
                access_efficiency=self.activation_access_efficiency,
                row_tiles=row_tiles,
            ),
            output_traffic_grid(ms, ns),
        )
        meta = TrafficBatch(len(ms))
        meta.add(
            "metadata",
            ms * ks * densities * BYTES_INDEX + (ms + 1) * BYTES_INDEX,
            validate=False,
        )
        return LaunchBatch(
            validate=False,
            names=[self.name],
            useful_flops=2.0 * ms * ns * ks * densities,
            traffic=traffic,
            meta_traffic=meta,
            tile_m=self.row_tile,
            tile_n=tile_n,
            tile_k=32,
            threads=128,
            pipeline_stages=2,
            num_tiles=row_tiles * ceil_div_array(ns, tile_n),
            k_steps=ceil_div_array(ks, 32),
            compute_unit=ComputeUnit.CUDA_CORE,
            compute_efficiency=self.compute_efficiency,
            bandwidth_efficiency=self.bandwidth_efficiency,
            prefetch_metadata=True,
            meta_prefetch_steps=2,
        )


class SputnikKernel(_UnstructuredKernel):
    """Sputnik-style unstructured SpMM, tuned for DNN-level moderate sparsity.

    The efficiency constants are calibrated so the dense-vs-sparse crossover
    points of Figure 1 land near the paper's: Sputnik overtakes the CUDA-core
    dense GEMM at roughly 65-70 % sparsity and the tensor-core dense GEMM
    only above ~90 % sparsity.
    """

    name = "sputnik"
    compute_efficiency = 0.42
    bandwidth_efficiency = 0.55
    row_tile = 16


class CusparseCSRKernel(_UnstructuredKernel):
    """cuSPARSE CSR SpMM: general-purpose, poorly suited to moderate sparsity."""

    name = "cusparse-csr"
    compute_efficiency = 0.12
    bandwidth_efficiency = 0.6
    activation_access_efficiency = 0.5
    row_tile = 4
