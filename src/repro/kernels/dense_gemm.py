"""Dense GEMM baselines (the cuBLAS / cuDNN stand-ins).

Two kernels:

* :class:`DenseTensorCoreGEMM` — the tensor-core dense baseline every speedup
  in the paper is measured against (cuBLAS for linear layers, cuDNN
  implicit-GEMM for convolutions),
* :class:`DenseCudaCoreGEMM` — the CUDA-core dense GEMM used as the reference
  curve of Figure 1 ("Cuda-Core" dense).
"""

from __future__ import annotations

import numpy as np

from ..core.pattern import PatternKind
from ..gpu.arch import GPUArch
from ..gpu.simulator import ComputeUnit, KernelLaunch, LaunchBatch
from ..gpu.tensorcore import ceil_div, ceil_div_array
from ..gpu.tiling import TileConfig, default_gemm_tile, default_gemm_tile_grid
from ..sparse.spmm import dense_gemm
from .base import (
    GEMMShape,
    SpMMKernel,
    activation_traffic,
    activation_traffic_grid,
    merge_traffic,
    merge_traffic_grid,
    output_traffic,
    output_traffic_grid,
    shape_arrays,
    weight_traffic,
    weight_traffic_grid,
)

__all__ = ["DenseTensorCoreGEMM", "DenseCudaCoreGEMM"]


class DenseTensorCoreGEMM(SpMMKernel):
    """Tensor-core dense GEMM (cuBLAS-like); the paper's dense baseline."""

    name = "dense-tensorcore"
    pattern = PatternKind.DENSE
    supports_conv = True

    #: Sustained fraction of peak tensor throughput for a well-tuned library
    #: GEMM on large tiles.
    compute_efficiency = 0.85
    bandwidth_efficiency = 0.85

    def prepare(self, weight: np.ndarray, **kwargs) -> np.ndarray:
        return np.asarray(weight, dtype=np.float64)

    def run(self, prepared: np.ndarray, activations: np.ndarray) -> np.ndarray:
        return dense_gemm(prepared, activations)

    def build_launch(
        self, arch: GPUArch, shape: GEMMShape, density: float = 1.0, **kwargs
    ) -> KernelLaunch:
        tile = default_gemm_tile(shape.m, shape.n, shape.k)
        n_tiles_m = ceil_div(shape.m, tile.tile_m)
        n_tiles_n = ceil_div(shape.n, tile.tile_n)
        num_tiles = n_tiles_m * n_tiles_n
        traffic = merge_traffic(
            weight_traffic(shape, 1.0, column_tiles=n_tiles_n),
            activation_traffic(shape, row_tile=tile.tile_m),
            output_traffic(shape),
        )
        # Library GEMMs fall back to split-K when the output grid is too
        # small to fill the machine (the typical case for narrow DNN layers):
        # the reduction is partitioned across extra threadblocks and partial
        # sums are reduced in a second pass through a workspace.
        split_k = 1
        while num_tiles * split_k < arch.sm_count and split_k < 8:
            split_k *= 2
        launches = 1
        if split_k > 1:
            workspace = shape.m * shape.n * 4.0 * split_k
            traffic.add("splitk-workspace-write", workspace, is_write=True)
            traffic.add("splitk-workspace-read", workspace)
            num_tiles *= split_k
            launches = 2
        return KernelLaunch(
            name=self.name,
            useful_flops=shape.flops,
            traffic=traffic,
            tile=tile,
            num_tiles=num_tiles,
            k_steps=max(1, ceil_div(tile.k_steps(shape.k), split_k)),
            compute_unit=ComputeUnit.TENSOR_CORE,
            compute_efficiency=self.compute_efficiency,
            bandwidth_efficiency=self.bandwidth_efficiency,
            prefetch_metadata=False,
            launches=launches,
        )

    def build_launch_batch(
        self, arch: GPUArch, shapes, densities, **kwargs
    ) -> LaunchBatch:
        """Vectorized :meth:`build_launch` over whole grids (splits-K and
        tile shrinking included, cell by cell)."""
        ms, ns, ks = shape_arrays(shapes)
        tile_m, tile_n, tile_k = default_gemm_tile_grid(ms, ns, ks)
        n_tiles_n = ceil_div_array(ns, tile_n)
        num_tiles = ceil_div_array(ms, tile_m) * n_tiles_n
        traffic = merge_traffic_grid(
            weight_traffic_grid(ms, ks, 1.0, column_tiles=n_tiles_n),
            activation_traffic_grid(ms, ns, ks, row_tile=tile_m),
            output_traffic_grid(ms, ns),
        )
        split_k = np.ones_like(num_tiles)
        for _ in range(3):  # 1 -> 2 -> 4 -> 8, exactly the scalar while loop
            grow = (num_tiles * split_k < arch.sm_count) & (split_k < 8)
            split_k = np.where(grow, split_k * 2, split_k)
        split = split_k > 1
        workspace = np.where(split, ms * ns * 4.0 * split_k, 0.0)
        traffic.add("splitk-workspace-write", workspace, is_write=True)
        traffic.add("splitk-workspace-read", workspace)
        return LaunchBatch(
            validate=False,
            names=[self.name],
            useful_flops=2.0 * ms * ns * ks,
            traffic=traffic,
            tile_m=tile_m,
            tile_n=tile_n,
            tile_k=tile_k,
            num_tiles=num_tiles * split_k,
            k_steps=np.maximum(1, ceil_div_array(ceil_div_array(ks, tile_k), split_k)),
            compute_unit=ComputeUnit.TENSOR_CORE,
            compute_efficiency=self.compute_efficiency,
            bandwidth_efficiency=self.bandwidth_efficiency,
            prefetch_metadata=False,
            launches=np.where(split, 2, 1),
        )


class DenseCudaCoreGEMM(SpMMKernel):
    """CUDA-core dense GEMM (no tensor cores), the Figure 1 reference curve."""

    name = "dense-cudacore"
    pattern = PatternKind.DENSE
    supports_conv = True

    # CUDA-core FP16 GEMMs sustain a markedly lower fraction of their peak
    # than tensor-core GEMMs (no MMA fragments, higher register pressure),
    # which is what puts the tensor-core dense curve of Figure 1 well above
    # the CUDA-core one.
    compute_efficiency = 0.6
    bandwidth_efficiency = 0.85
    #: The launch description never consults the architecture.
    launch_arch_agnostic = True

    def prepare(self, weight: np.ndarray, **kwargs) -> np.ndarray:
        return np.asarray(weight, dtype=np.float64)

    def run(self, prepared: np.ndarray, activations: np.ndarray) -> np.ndarray:
        return dense_gemm(prepared, activations)

    def build_launch(
        self, arch: GPUArch, shape: GEMMShape, density: float = 1.0, **kwargs
    ) -> KernelLaunch:
        # CUDA-core GEMMs use smaller tiles (register pressure without MMA
        # fragments), which also lowers their data reuse.
        tile = TileConfig(
            tile_m=min(64, max(16, shape.m)),
            tile_n=min(64, max(16, shape.n)),
            tile_k=min(32, max(8, shape.k)),
            threads=256,
            pipeline_stages=2,
        )
        n_tiles_m = ceil_div(shape.m, tile.tile_m)
        n_tiles_n = ceil_div(shape.n, tile.tile_n)
        traffic = merge_traffic(
            weight_traffic(shape, 1.0, column_tiles=n_tiles_n),
            activation_traffic(shape, row_tile=tile.tile_m),
            output_traffic(shape),
        )
        return KernelLaunch(
            name=self.name,
            useful_flops=shape.flops,
            traffic=traffic,
            tile=tile,
            num_tiles=n_tiles_m * n_tiles_n,
            k_steps=tile.k_steps(shape.k),
            compute_unit=ComputeUnit.CUDA_CORE,
            compute_efficiency=self.compute_efficiency,
            bandwidth_efficiency=self.bandwidth_efficiency,
            prefetch_metadata=False,
        )

    def build_launch_batch(
        self, arch: GPUArch, shapes, densities, **kwargs
    ) -> LaunchBatch:
        """Vectorized :meth:`build_launch` over whole grids."""
        ms, ns, ks = shape_arrays(shapes)
        tile_m = np.minimum(64, np.maximum(16, ms))
        tile_n = np.minimum(64, np.maximum(16, ns))
        tile_k = np.minimum(32, np.maximum(8, ks))
        traffic = merge_traffic_grid(
            weight_traffic_grid(ms, ks, 1.0, column_tiles=ceil_div_array(ns, tile_n)),
            activation_traffic_grid(ms, ns, ks, row_tile=tile_m),
            output_traffic_grid(ms, ns),
        )
        return LaunchBatch(
            validate=False,
            names=[self.name],
            useful_flops=2.0 * ms * ns * ks,
            traffic=traffic,
            tile_m=tile_m,
            tile_n=tile_n,
            tile_k=tile_k,
            threads=256,
            pipeline_stages=2,
            num_tiles=ceil_div_array(ms, tile_m) * ceil_div_array(ns, tile_n),
            k_steps=ceil_div_array(ks, tile_k),
            compute_unit=ComputeUnit.CUDA_CORE,
            compute_efficiency=self.compute_efficiency,
            bandwidth_efficiency=self.bandwidth_efficiency,
            prefetch_metadata=False,
        )
