"""Dense GEMM baselines (the cuBLAS / cuDNN stand-ins).

Two kernels:

* :class:`DenseTensorCoreGEMM` — the tensor-core dense baseline every speedup
  in the paper is measured against (cuBLAS for linear layers, cuDNN
  implicit-GEMM for convolutions),
* :class:`DenseCudaCoreGEMM` — the CUDA-core dense GEMM used as the reference
  curve of Figure 1 ("Cuda-Core" dense).
"""

from __future__ import annotations

import numpy as np

from ..core.pattern import PatternKind
from ..gpu.arch import GPUArch
from ..gpu.simulator import ComputeUnit, KernelLaunch
from ..gpu.tensorcore import ceil_div
from ..gpu.tiling import TileConfig, default_gemm_tile
from ..sparse.spmm import dense_gemm
from .base import (
    GEMMShape,
    SpMMKernel,
    activation_traffic,
    merge_traffic,
    output_traffic,
    weight_traffic,
)

__all__ = ["DenseTensorCoreGEMM", "DenseCudaCoreGEMM"]


class DenseTensorCoreGEMM(SpMMKernel):
    """Tensor-core dense GEMM (cuBLAS-like); the paper's dense baseline."""

    name = "dense-tensorcore"
    pattern = PatternKind.DENSE
    supports_conv = True

    #: Sustained fraction of peak tensor throughput for a well-tuned library
    #: GEMM on large tiles.
    compute_efficiency = 0.85
    bandwidth_efficiency = 0.85

    def prepare(self, weight: np.ndarray, **kwargs) -> np.ndarray:
        return np.asarray(weight, dtype=np.float64)

    def run(self, prepared: np.ndarray, activations: np.ndarray) -> np.ndarray:
        return dense_gemm(prepared, activations)

    def build_launch(
        self, arch: GPUArch, shape: GEMMShape, density: float = 1.0, **kwargs
    ) -> KernelLaunch:
        tile = default_gemm_tile(shape.m, shape.n, shape.k)
        n_tiles_m = ceil_div(shape.m, tile.tile_m)
        n_tiles_n = ceil_div(shape.n, tile.tile_n)
        num_tiles = n_tiles_m * n_tiles_n
        traffic = merge_traffic(
            weight_traffic(shape, 1.0, column_tiles=n_tiles_n),
            activation_traffic(shape, row_tile=tile.tile_m),
            output_traffic(shape),
        )
        # Library GEMMs fall back to split-K when the output grid is too
        # small to fill the machine (the typical case for narrow DNN layers):
        # the reduction is partitioned across extra threadblocks and partial
        # sums are reduced in a second pass through a workspace.
        split_k = 1
        while num_tiles * split_k < arch.sm_count and split_k < 8:
            split_k *= 2
        launches = 1
        if split_k > 1:
            workspace = shape.m * shape.n * 4.0 * split_k
            traffic.add("splitk-workspace-write", workspace, is_write=True)
            traffic.add("splitk-workspace-read", workspace)
            num_tiles *= split_k
            launches = 2
        return KernelLaunch(
            name=self.name,
            useful_flops=shape.flops,
            traffic=traffic,
            tile=tile,
            num_tiles=num_tiles,
            k_steps=max(1, ceil_div(tile.k_steps(shape.k), split_k)),
            compute_unit=ComputeUnit.TENSOR_CORE,
            compute_efficiency=self.compute_efficiency,
            bandwidth_efficiency=self.bandwidth_efficiency,
            prefetch_metadata=False,
            launches=launches,
        )


class DenseCudaCoreGEMM(SpMMKernel):
    """CUDA-core dense GEMM (no tensor cores), the Figure 1 reference curve."""

    name = "dense-cudacore"
    pattern = PatternKind.DENSE
    supports_conv = True

    # CUDA-core FP16 GEMMs sustain a markedly lower fraction of their peak
    # than tensor-core GEMMs (no MMA fragments, higher register pressure),
    # which is what puts the tensor-core dense curve of Figure 1 well above
    # the CUDA-core one.
    compute_efficiency = 0.6
    bandwidth_efficiency = 0.85

    def prepare(self, weight: np.ndarray, **kwargs) -> np.ndarray:
        return np.asarray(weight, dtype=np.float64)

    def run(self, prepared: np.ndarray, activations: np.ndarray) -> np.ndarray:
        return dense_gemm(prepared, activations)

    def build_launch(
        self, arch: GPUArch, shape: GEMMShape, density: float = 1.0, **kwargs
    ) -> KernelLaunch:
        # CUDA-core GEMMs use smaller tiles (register pressure without MMA
        # fragments), which also lowers their data reuse.
        tile = TileConfig(
            tile_m=min(64, max(16, shape.m)),
            tile_n=min(64, max(16, shape.n)),
            tile_k=min(32, max(8, shape.k)),
            threads=256,
            pipeline_stages=2,
        )
        n_tiles_m = ceil_div(shape.m, tile.tile_m)
        n_tiles_n = ceil_div(shape.n, tile.tile_n)
        traffic = merge_traffic(
            weight_traffic(shape, 1.0, column_tiles=n_tiles_n),
            activation_traffic(shape, row_tile=tile.tile_m),
            output_traffic(shape),
        )
        return KernelLaunch(
            name=self.name,
            useful_flops=shape.flops,
            traffic=traffic,
            tile=tile,
            num_tiles=n_tiles_m * n_tiles_n,
            k_steps=tile.k_steps(shape.k),
            compute_unit=ComputeUnit.CUDA_CORE,
            compute_efficiency=self.compute_efficiency,
            bandwidth_efficiency=self.bandwidth_efficiency,
            prefetch_metadata=False,
        )
