"""Block-wise (BSR) SpMM baseline — the cuSPARSE block-sparse kernel.

Block-wise sparsity is the most computation-friendly pattern: every stored
``V x V`` block is dense, so the kernel runs tensor-core MMAs on dense tiles.
The paper observes, however, that the vendor implementation shows *unstable*
performance across GPUs and block sizes (Section 6.2: Shfl-BW is on average
2.88x faster than cuSPARSE BSR on T4 at V=64, but 0.83x — i.e. slower — on
V100 at V=32).  We model that with an efficiency table keyed by architecture
and block size, reflecting which configurations the vendor library has tuned
kernels for.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from ..core.pattern import PatternKind
from ..gpu.arch import GPUArch
from ..gpu.memory import BYTES_INDEX, TrafficBatch, TrafficBreakdown
from ..gpu.simulator import ComputeUnit, KernelLaunch, LaunchBatch
from ..gpu.tensorcore import ceil_div, ceil_div_array
from ..gpu.tiling import TileConfig
from ..sparse.convert import dense_to_block
from ..sparse.formats import BlockSparseMatrix
from ..sparse.spmm import spmm_block
from .base import (
    GEMMShape,
    SpMMKernel,
    activation_traffic,
    activation_traffic_grid,
    merge_traffic,
    merge_traffic_grid,
    output_traffic,
    output_traffic_grid,
    shape_arrays,
    weight_traffic,
    weight_traffic_grid,
)

__all__ = ["CusparseBSRKernel"]


class CusparseBSRKernel(SpMMKernel):
    """cuSPARSE block-wise SpMM (``V x V`` blocks on tensor cores)."""

    name = "cusparse-bsr"
    pattern = PatternKind.BLOCKWISE
    supports_conv = False

    bandwidth_efficiency = 0.75

    #: Sustained tensor-core efficiency by (architecture, block size).  The
    #: vendor kernels are well tuned for small blocks on Volta but degrade on
    #: larger blocks and on Turing/Ampere, which is the "unstable performance"
    #: the paper reports.  Unlisted combinations fall back to ``0.35``.
    efficiency_table: ClassVar[dict[tuple[str, int], float]] = {
        ("V100", 16): 0.70,
        ("V100", 32): 0.80,
        ("V100", 64): 0.45,
        ("T4", 16): 0.30,
        ("T4", 32): 0.35,
        ("T4", 64): 0.22,
        ("A100", 16): 0.45,
        ("A100", 32): 0.55,
        ("A100", 64): 0.40,
    }
    default_efficiency = 0.35

    def __init__(self, block_size: int = 32):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size

    @property
    def label(self) -> str:
        """Label used in the paper's figures, e.g. ``BW, V=32``."""
        return f"BW,V={self.block_size}"

    def prepare(self, weight: np.ndarray, **kwargs) -> BlockSparseMatrix:
        return dense_to_block(weight, kwargs.get("block_size", self.block_size))

    def run(self, prepared: BlockSparseMatrix, activations: np.ndarray) -> np.ndarray:
        return spmm_block(prepared, activations)

    def metadata_bytes(self, shape: GEMMShape, density: float, **kwargs) -> float:
        v = kwargs.get("block_size", self.block_size)
        block_rows = ceil_div(shape.m, v)
        blocks_kept = block_rows * ceil_div(shape.k, v) * density
        return blocks_kept * BYTES_INDEX + (block_rows + 1) * BYTES_INDEX

    def _efficiency(self, arch: GPUArch, block_size: int) -> float:
        return self.efficiency_table.get((arch.name, block_size), self.default_efficiency)

    def build_launch(
        self, arch: GPUArch, shape: GEMMShape, density: float, **kwargs
    ) -> KernelLaunch:
        v = kwargs.get("block_size", self.block_size)
        if shape.m % v or shape.k % v:
            raise ValueError(f"GEMM shape {shape} is not divisible by block size {v}")
        tile = TileConfig(
            tile_m=v,
            tile_n=min(64, max(16, shape.n)),
            tile_k=v,
            threads=128,
            pipeline_stages=2,
        )
        traffic = merge_traffic(
            weight_traffic(shape, density),
            activation_traffic(shape, row_tile=v, kept_fraction=density),
            output_traffic(shape),
        )
        meta = TrafficBreakdown()
        meta.add("metadata", self.metadata_bytes(shape, density, block_size=v))
        n_tiles = ceil_div(shape.m, v) * ceil_div(shape.n, tile.tile_n)
        return KernelLaunch(
            name=f"{self.name}-v{v}",
            useful_flops=shape.sparse_flops(density),
            traffic=traffic,
            meta_traffic=meta,
            tile=tile,
            num_tiles=n_tiles,
            k_steps=max(1, int(round(shape.k * density / v))),
            compute_unit=ComputeUnit.TENSOR_CORE,
            compute_efficiency=self._efficiency(arch, v),
            bandwidth_efficiency=self.bandwidth_efficiency,
            prefetch_metadata=False,
            launches=2,  # the library performs a separate analysis/setup pass
        )

    def build_launch_batch(
        self, arch: GPUArch, shapes, densities, **kwargs
    ) -> LaunchBatch:
        """Vectorized :meth:`build_launch` over whole grids."""
        v = kwargs.get("block_size", self.block_size)
        ms, ns, ks = shape_arrays(shapes)
        densities = np.asarray(densities, dtype=np.float64)
        ragged = (ms % v != 0) | (ks % v != 0)
        if np.any(ragged):
            offender = int(np.argmax(ragged))
            bad = GEMMShape(int(ms[offender]), int(ns[offender]), int(ks[offender]))
            raise ValueError(f"GEMM shape {bad} is not divisible by block size {v}")
        tile_n = np.minimum(64, np.maximum(16, ns))
        block_rows = ceil_div_array(ms, v)
        traffic = merge_traffic_grid(
            weight_traffic_grid(ms, ks, densities),
            activation_traffic_grid(
                ms, ns, ks, row_tile=v, kept_fraction=densities, row_tiles=block_rows
            ),
            output_traffic_grid(ms, ns),
        )
        meta = TrafficBatch(len(ms))
        meta.add(
            "metadata",
            block_rows * ceil_div_array(ks, v) * densities * BYTES_INDEX
            + (block_rows + 1) * BYTES_INDEX,
            validate=False,
        )
        return LaunchBatch(
            validate=False,
            names=[f"{self.name}-v{v}"],
            useful_flops=2.0 * ms * ns * ks * densities,
            traffic=traffic,
            meta_traffic=meta,
            tile_m=v,
            tile_n=tile_n,
            tile_k=v,
            threads=128,
            pipeline_stages=2,
            num_tiles=block_rows * ceil_div_array(ns, tile_n),
            k_steps=np.maximum(1, np.round(ks * densities / v).astype(np.int64)),
            compute_unit=ComputeUnit.TENSOR_CORE,
            compute_efficiency=self._efficiency(arch, v),
            bandwidth_efficiency=self.bandwidth_efficiency,
            prefetch_metadata=False,
            launches=2,
        )
