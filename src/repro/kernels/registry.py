"""Kernel registry: build any kernel (ours or baseline) by name.

The names follow the legend of Figure 6 so the evaluation harness and the
benchmarks can ask for exactly the bars the paper plots.
"""

from __future__ import annotations

from collections.abc import Callable

from .base import SpMMKernel
from .cusparse_bsr import CusparseBSRKernel
from .cusparselt import CusparseLtKernel
from .dense_gemm import DenseCudaCoreGEMM, DenseTensorCoreGEMM
from .shflbw import ShflBWConvKernel, ShflBWKernel
from .sputnik import CusparseCSRKernel, SputnikKernel
from .tilewise import TileWiseKernel
from .vector_wise import VectorWiseKernel
from .vectorsparse import VectorSparseKernel

__all__ = [
    "available_kernels",
    "make_kernel",
    "register_kernel",
    "paper_baselines",
    "paper_baseline_specs",
    "DENSE_BASELINE_LABEL",
]

#: Figure 6 legend label of the dense reference every speedup is against.
DENSE_BASELINE_LABEL = "Dense (tensor-core)"


_FACTORIES: dict[str, Callable[..., SpMMKernel]] = {
    "dense": DenseTensorCoreGEMM,
    "dense-tensorcore": DenseTensorCoreGEMM,
    "dense-cudacore": DenseCudaCoreGEMM,
    "sputnik": SputnikKernel,
    "unstructured": SputnikKernel,
    "cusparse-csr": CusparseCSRKernel,
    "cusparse-bsr": CusparseBSRKernel,
    "blockwise": CusparseBSRKernel,
    "cusparselt": CusparseLtKernel,
    "balanced-2in4": CusparseLtKernel,
    "vectorsparse": VectorSparseKernel,
    "tilewise": TileWiseKernel,
    "vector-wise": VectorWiseKernel,
    "shfl-bw": ShflBWKernel,
    "shfl-bw-conv": ShflBWConvKernel,
}


def available_kernels() -> list[str]:
    """Names accepted by :func:`make_kernel`."""
    return sorted(_FACTORIES)


def make_kernel(name: str, **kwargs) -> SpMMKernel:
    """Construct a kernel by name, forwarding keyword arguments
    (``vector_size``, ``block_size``, ...) to its constructor."""
    key = name.strip().lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(available_kernels())}"
        )
    return _FACTORIES[key](**kwargs)


def register_kernel(name: str, factory: Callable[..., SpMMKernel], *, overwrite: bool = False) -> None:
    """Register a custom kernel factory under ``name``."""
    key = name.strip().lower()
    if key in _FACTORIES and not overwrite:
        raise ValueError(f"kernel {name!r} is already registered")
    _FACTORIES[key] = factory


def paper_baseline_specs(
    vector_sizes: tuple[int, ...] = (32, 64),
) -> dict[str, tuple[str, dict]]:
    """The Figure 6 kernel line-up as declarative ``(name, kwargs)`` specs.

    Keyed by the figure's legend labels; this is the form the sweep runner
    consumes (a registry name plus constructor kwargs is hashable and
    picklable, a kernel instance is neither canonically).
    """
    specs: dict[str, tuple[str, dict]] = {
        DENSE_BASELINE_LABEL: ("dense", {}),
        "Unstructured cuSPARSE": ("cusparse-csr", {}),
        "Unstructured (Sputnik)": ("sputnik", {}),
        "VectorSparse (VW,V=8)": ("vectorsparse", {}),
        "TileWise (VW,V=128)": ("tilewise", {}),
        "Balanced 2in4": ("cusparselt", {}),
    }
    for v in vector_sizes:
        specs[f"BW,V={v}"] = ("cusparse-bsr", {"block_size": v})
        specs[f"VW,V={v}"] = ("vector-wise", {"vector_size": v})
        specs[f"Shfl-BW,V={v}"] = ("shfl-bw", {"vector_size": v})
    return specs


def paper_baselines(vector_sizes: tuple[int, ...] = (32, 64)) -> dict[str, SpMMKernel]:
    """The full kernel line-up of Figure 6, keyed by the figure's labels.

    Includes the dense baseline, every baseline sparse kernel and our
    vector-wise / Shfl-BW kernels at the requested vector sizes.
    """
    return {
        label: make_kernel(name, **kwargs)
        for label, (name, kwargs) in paper_baseline_specs(vector_sizes).items()
    }
