"""Kernel registry: build any kernel (ours or baseline) by name.

The names follow the legend of Figure 6 so the evaluation harness and the
benchmarks can ask for exactly the bars the paper plots.
"""

from __future__ import annotations

from collections.abc import Callable

from .base import SpMMKernel
from .cusparse_bsr import CusparseBSRKernel
from .cusparselt import CusparseLtKernel
from .dense_gemm import DenseCudaCoreGEMM, DenseTensorCoreGEMM
from .shflbw import ShflBWConvKernel, ShflBWKernel
from .sputnik import CusparseCSRKernel, SputnikKernel
from .tilewise import TileWiseKernel
from .vector_wise import VectorWiseKernel
from .vectorsparse import VectorSparseKernel

__all__ = ["available_kernels", "make_kernel", "register_kernel", "paper_baselines"]


_FACTORIES: dict[str, Callable[..., SpMMKernel]] = {
    "dense": DenseTensorCoreGEMM,
    "dense-tensorcore": DenseTensorCoreGEMM,
    "dense-cudacore": DenseCudaCoreGEMM,
    "sputnik": SputnikKernel,
    "unstructured": SputnikKernel,
    "cusparse-csr": CusparseCSRKernel,
    "cusparse-bsr": CusparseBSRKernel,
    "blockwise": CusparseBSRKernel,
    "cusparselt": CusparseLtKernel,
    "balanced-2in4": CusparseLtKernel,
    "vectorsparse": VectorSparseKernel,
    "tilewise": TileWiseKernel,
    "vector-wise": VectorWiseKernel,
    "shfl-bw": ShflBWKernel,
    "shfl-bw-conv": ShflBWConvKernel,
}


def available_kernels() -> list[str]:
    """Names accepted by :func:`make_kernel`."""
    return sorted(_FACTORIES)


def make_kernel(name: str, **kwargs) -> SpMMKernel:
    """Construct a kernel by name, forwarding keyword arguments
    (``vector_size``, ``block_size``, ...) to its constructor."""
    key = name.strip().lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(available_kernels())}"
        )
    return _FACTORIES[key](**kwargs)


def register_kernel(name: str, factory: Callable[..., SpMMKernel], *, overwrite: bool = False) -> None:
    """Register a custom kernel factory under ``name``."""
    key = name.strip().lower()
    if key in _FACTORIES and not overwrite:
        raise ValueError(f"kernel {name!r} is already registered")
    _FACTORIES[key] = factory


def paper_baselines(vector_sizes: tuple[int, ...] = (32, 64)) -> dict[str, SpMMKernel]:
    """The full kernel line-up of Figure 6, keyed by the figure's labels.

    Includes the dense baseline, every baseline sparse kernel and our
    vector-wise / Shfl-BW kernels at the requested vector sizes.
    """
    kernels: dict[str, SpMMKernel] = {
        "Dense (tensor-core)": DenseTensorCoreGEMM(),
        "Unstructured cuSPARSE": CusparseCSRKernel(),
        "Unstructured (Sputnik)": SputnikKernel(),
        "VectorSparse (VW,V=8)": VectorSparseKernel(),
        "TileWise (VW,V=128)": TileWiseKernel(),
        "Balanced 2in4": CusparseLtKernel(),
    }
    for v in vector_sizes:
        kernels[f"BW,V={v}"] = CusparseBSRKernel(block_size=v)
        kernels[f"VW,V={v}"] = VectorWiseKernel(vector_size=v)
        kernels[f"Shfl-BW,V={v}"] = ShflBWKernel(vector_size=v)
    return kernels
