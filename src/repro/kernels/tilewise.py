"""TileWise baseline (Guo et al., SC'20): tile-wise sparsity via multi-stream.

TileWise prunes at a coarse granularity (the paper runs it as vector-wise with
``V = 128``) and dispatches the resulting dense sub-problems as separate GEMMs
on CUDA multi-streams.  The paper finds that the overhead of managing many
streams prevents it from beating the dense baseline on real weight shapes
(Section 6.2), unless the additional neuron pruning from the original paper is
applied.  We model the approach as a vector-wise kernel that pays one kernel
launch per row-group stream plus a per-stream synchronisation cost.
"""

from __future__ import annotations

import numpy as np

from ..gpu.arch import GPUArch
from ..gpu.simulator import KernelLaunch, LaunchBatch
from ..gpu.tensorcore import ceil_div, ceil_div_array
from .base import GEMMShape, shape_arrays
from .vector_wise import VectorWiseKernel

__all__ = ["TileWiseKernel"]


class TileWiseKernel(VectorWiseKernel):
    """TileWise: coarse vector-wise sparsity executed with CUDA multi-streams."""

    name = "tilewise"
    supports_conv = False

    compute_efficiency = 0.75
    bandwidth_efficiency = 0.8

    #: Synchronisation / scheduling cost per stream, on top of the per-launch
    #: overhead (stream creation, event waits, reduced scheduling freedom).
    stream_overhead_s = 12.0e-6
    #: TileWise is only compiled for Volta in the paper's experiments.
    supported_archs = ("V100",)

    def __init__(self, vector_size: int = 128, max_streams: int = 8):
        super().__init__(vector_size=vector_size)
        if max_streams <= 0:
            raise ValueError("max_streams must be positive")
        self.max_streams = max_streams

    @property
    def label(self) -> str:
        return f"TileWise(VW,V={self.vector_size})"

    def build_launch(
        self, arch: GPUArch, shape: GEMMShape, density: float, **kwargs
    ) -> KernelLaunch:
        launch = super().build_launch(arch, shape, density, **kwargs)
        v = kwargs.get("vector_size", self.vector_size)
        streams = min(self.max_streams, ceil_div(shape.m, v))
        launch.name = f"{self.name}-v{v}"
        launch.launches = streams
        launch.extra_overhead_s = streams * self.stream_overhead_s
        # Splitting the GEMM across streams forfeits the single fused kernel's
        # software pipelining across row groups.
        launch.prefetch_metadata = False
        return launch

    def build_launch_batch(
        self, arch: GPUArch, shapes, densities, **kwargs
    ) -> LaunchBatch:
        """Vectorized :meth:`build_launch`: the vector-wise batch with the
        per-stream launch and synchronisation overheads."""
        batch = super().build_launch_batch(arch, shapes, densities, **kwargs)
        v = kwargs.get("vector_size", self.vector_size)
        ms, _, _ = shape_arrays(shapes)
        streams = np.minimum(self.max_streams, ceil_div_array(ms, v))
        batch.names = [f"{self.name}-v{v}"] * len(batch)
        batch.launches = streams
        batch.extra_overhead_s = streams * self.stream_overhead_s
        batch.prefetch_metadata = np.broadcast_to(np.bool_(False), (len(batch),))
        return batch
