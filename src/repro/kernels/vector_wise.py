"""Our vector-wise SpMM kernel (the ``VW`` bars of Figure 6).

cuSPARSE provides no vector-wise kernels, so the paper implements its own:
each group of ``V`` consecutive rows shares a column support, the kept columns
are stitched into dense ``V x T_K`` tiles, and tensor-core MMAs run on the
stitched tiles.  The Shfl-BW kernel (:mod:`repro.kernels.shflbw`) adds the
row-shuffle handling on top of exactly this structure, which is why the paper
reports Shfl-BW at 0.97-1.02x of vector-wise — the shuffle is free.
"""

from __future__ import annotations

import numpy as np

from ..core.pattern import PatternKind
from ..gpu.arch import GPUArch
from ..gpu.memory import BYTES_INDEX, TrafficBatch, TrafficBreakdown
from ..gpu.simulator import ComputeUnit, KernelLaunch, LaunchBatch
from ..gpu.tensorcore import ceil_div, ceil_div_array
from ..gpu.tiling import TileConfig
from ..sparse.convert import dense_to_vector_wise
from ..sparse.formats import VectorSparseMatrix
from ..sparse.spmm import spmm_vector_wise
from .base import (
    GEMMShape,
    SpMMKernel,
    activation_traffic,
    activation_traffic_grid,
    merge_traffic,
    merge_traffic_grid,
    output_traffic,
    output_traffic_grid,
    shape_arrays,
    weight_traffic,
    weight_traffic_grid,
)

__all__ = ["VectorWiseKernel"]


class VectorWiseKernel(SpMMKernel):
    """Tensor-core vector-wise SpMM with in-buffer stitching (ours)."""

    name = "vector-wise"
    pattern = PatternKind.VECTORWISE
    supports_conv = True

    compute_efficiency = 0.80
    bandwidth_efficiency = 0.85
    #: The launch description never consults the architecture.
    launch_arch_agnostic = True
    #: Stitched reduction-tile width (columns gathered per main-loop step).
    stitch_tile_k = 32
    #: Output-tile width along N.
    tile_n = 64

    def __init__(self, vector_size: int = 32):
        if vector_size <= 0:
            raise ValueError("vector_size must be positive")
        self.vector_size = vector_size

    @property
    def label(self) -> str:
        """Label used in the paper's figures, e.g. ``VW, V=32``."""
        return f"VW,V={self.vector_size}"

    # -------------------------- functional side -------------------------- #
    def prepare(self, weight: np.ndarray, **kwargs) -> VectorSparseMatrix:
        return dense_to_vector_wise(weight, kwargs.get("vector_size", self.vector_size))

    def run(self, prepared: VectorSparseMatrix, activations: np.ndarray) -> np.ndarray:
        return spmm_vector_wise(prepared, activations)

    # -------------------------- performance side ------------------------- #
    def metadata_bytes(self, shape: GEMMShape, density: float, **kwargs) -> float:
        """Column indices: one per kept column per row group."""
        v = kwargs.get("vector_size", self.vector_size)
        groups = ceil_div(shape.m, v)
        kept_cols = shape.k * density
        return groups * kept_cols * BYTES_INDEX

    def _tile(self, shape: GEMMShape, vector_size: int) -> TileConfig:
        return TileConfig(
            tile_m=vector_size,
            tile_n=min(self.tile_n, max(16, shape.n)),
            tile_k=self.stitch_tile_k,
            threads=128,
            pipeline_stages=3,
        )

    def build_launch(
        self, arch: GPUArch, shape: GEMMShape, density: float, **kwargs
    ) -> KernelLaunch:
        v = kwargs.get("vector_size", self.vector_size)
        if shape.m % v:
            raise ValueError(f"M={shape.m} is not divisible by V={v}")
        tile = self._tile(shape, v)
        traffic = merge_traffic(
            weight_traffic(shape, density),
            activation_traffic(shape, row_tile=v, kept_fraction=density),
            output_traffic(shape),
        )
        meta = TrafficBreakdown()
        meta.add("metadata", self.metadata_bytes(shape, density, vector_size=v))
        n_tiles = ceil_div(shape.m, v) * ceil_div(shape.n, tile.tile_n)
        kept_per_group = max(1, int(round(shape.k * density)))
        return KernelLaunch(
            name=f"{self.name}-v{v}",
            useful_flops=shape.sparse_flops(density),
            traffic=traffic,
            meta_traffic=meta,
            tile=tile,
            num_tiles=n_tiles,
            k_steps=max(1, ceil_div(kept_per_group, tile.tile_k)),
            compute_unit=ComputeUnit.TENSOR_CORE,
            compute_efficiency=self.compute_efficiency,
            bandwidth_efficiency=self.bandwidth_efficiency,
            prefetch_metadata=True,
            meta_prefetch_steps=4,
        )

    def build_launch_batch(
        self, arch: GPUArch, shapes, densities, **kwargs
    ) -> LaunchBatch:
        """Vectorized :meth:`build_launch` over whole grids."""
        v = kwargs.get("vector_size", self.vector_size)
        ms, ns, ks = shape_arrays(shapes)
        densities = np.asarray(densities, dtype=np.float64)
        ragged = ms % v != 0
        if np.any(ragged):
            bad = int(ms[np.argmax(ragged)])
            raise ValueError(f"M={bad} is not divisible by V={v}")
        tile_n = np.minimum(self.tile_n, np.maximum(16, ns))
        groups = ceil_div_array(ms, v)
        traffic = merge_traffic_grid(
            weight_traffic_grid(ms, ks, densities),
            activation_traffic_grid(
                ms, ns, ks, row_tile=v, kept_fraction=densities, row_tiles=groups
            ),
            output_traffic_grid(ms, ns),
        )
        meta = TrafficBatch(len(ms))
        meta.add("metadata", groups * (ks * densities) * BYTES_INDEX, validate=False)
        kept_per_group = np.maximum(1, np.round(ks * densities).astype(np.int64))
        return LaunchBatch(
            validate=False,
            names=[f"{self.name}-v{v}"],
            useful_flops=2.0 * ms * ns * ks * densities,
            traffic=traffic,
            meta_traffic=meta,
            tile_m=v,
            tile_n=tile_n,
            tile_k=self.stitch_tile_k,
            threads=128,
            pipeline_stages=3,
            num_tiles=groups * ceil_div_array(ns, tile_n),
            k_steps=np.maximum(1, ceil_div_array(kept_per_group, self.stitch_tile_k)),
            compute_unit=ComputeUnit.TENSOR_CORE,
            compute_efficiency=self.compute_efficiency,
            bandwidth_efficiency=self.bandwidth_efficiency,
            prefetch_metadata=True,
            meta_prefetch_steps=4,
        )
