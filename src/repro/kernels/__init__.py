"""SpMM / convolution kernels: the paper's Shfl-BW kernels plus every baseline
measured in the evaluation, each with a functional (numpy) implementation and
a performance description for the GPU timing model."""

from .base import (
    GEMMShape,
    KernelCapabilities,
    KernelNotApplicableError,
    SpMMKernel,
    conv_to_gemm_shape,
)
from .cusparse_bsr import CusparseBSRKernel
from .cusparselt import CusparseLtKernel
from .dense_gemm import DenseCudaCoreGEMM, DenseTensorCoreGEMM
from .registry import (
    DENSE_BASELINE_LABEL,
    available_kernels,
    make_kernel,
    paper_baseline_specs,
    paper_baselines,
    register_kernel,
)
from .shflbw import ShflBWConvKernel, ShflBWKernel
from .sputnik import CusparseCSRKernel, SputnikKernel, unstructured_union_fraction
from .tilewise import TileWiseKernel
from .vector_wise import VectorWiseKernel
from .vectorsparse import VectorSparseKernel

__all__ = [
    "GEMMShape",
    "KernelCapabilities",
    "KernelNotApplicableError",
    "SpMMKernel",
    "conv_to_gemm_shape",
    "CusparseBSRKernel",
    "CusparseLtKernel",
    "DenseCudaCoreGEMM",
    "DenseTensorCoreGEMM",
    "available_kernels",
    "make_kernel",
    "paper_baselines",
    "paper_baseline_specs",
    "DENSE_BASELINE_LABEL",
    "register_kernel",
    "ShflBWConvKernel",
    "ShflBWKernel",
    "CusparseCSRKernel",
    "SputnikKernel",
    "unstructured_union_fraction",
    "TileWiseKernel",
    "VectorWiseKernel",
    "VectorSparseKernel",
]
