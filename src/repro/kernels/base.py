"""Kernel interface shared by every SpMM / convolution implementation.

Each kernel pairs a *functional* implementation (numpy, bit-exact against a
dense reference) with a *performance* description that the GPU timing model
(:mod:`repro.gpu.simulator`) turns into an execution-time estimate.  The two
halves share the same structural assumptions — storage format, tile shapes,
metadata layout — so the timing story cannot drift away from what the kernel
actually computes.

The reduction convention follows the paper: the weight matrix ``A`` has shape
``(M, K)`` and is the (possibly sparse) left operand, the activation matrix
``B`` has shape ``(K, N)`` where ``N`` is the batch (token) dimension, and the
output ``C`` is ``(M, N)``.
"""

from __future__ import annotations

import abc
import dataclasses
import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..core.pattern import PatternKind
from ..gpu.arch import GPUArch
from ..gpu.memory import BYTES_FP16, TrafficBatch, TrafficBreakdown
from ..gpu.simulator import (
    KernelLaunch,
    KernelTiming,
    LaunchBatch,
    TimingBatch,
    simulate,
    simulate_batch,
)
from ..gpu.tensorcore import ceil_div, ceil_div_array
from ..gpu.vectorize import anytrue
from ..sparse.spconv import Conv2dSpec

__all__ = [
    "GEMMShape",
    "KernelCapabilities",
    "KernelNotApplicableError",
    "SpMMKernel",
    "weight_traffic",
    "activation_traffic",
    "output_traffic",
    "conv_to_gemm_shape",
    "conv_unfold_factor",
    "no_conv_support_detail",
    "shape_arrays",
    "weight_traffic_grid",
    "activation_traffic_grid",
    "output_traffic_grid",
    "merge_traffic_grid",
]


class KernelNotApplicableError(RuntimeError):
    """Raised when a kernel cannot run a given problem (unsupported density,
    architecture or pattern)."""


@dataclass(frozen=True)
class GEMMShape:
    """Shape of one (Sp)GEMM problem: ``C[M, N] = A[M, K] @ B[K, N]``."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise ValueError("GEMM dimensions must be positive")

    @property
    def flops(self) -> float:
        """Dense FLOP count (MAC = 2 ops)."""
        return 2.0 * self.m * self.n * self.k

    def sparse_flops(self, density: float) -> float:
        """Useful FLOPs when the weight matrix has the given non-zero ratio."""
        if not 0.0 < density <= 1.0:
            raise ValueError("density must be in (0, 1]")
        return self.flops * density

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"M{self.m}/N{self.n}/K{self.k}"


def conv_to_gemm_shape(spec: Conv2dSpec, batch: int, height: int, width: int) -> GEMMShape:
    """Implicit-GEMM shape of a convolution layer (Section 4.1)."""
    if batch <= 0 or height <= 0 or width <= 0:
        raise ValueError("batch and spatial dimensions must be positive")
    oh, ow = spec.output_hw(height, width)
    return GEMMShape(m=spec.gemm_m, n=batch * oh * ow, k=spec.gemm_k)


def no_conv_support_detail(name: str) -> str:
    """The single source of the 'no convolution implementation' message.

    Raised by :meth:`SpMMKernel.estimate_conv`, reported by
    :meth:`KernelCapabilities.infeasible_reason` and reproduced verbatim by
    the batched grid paths, whose records must match the scalar executor's
    string for string.
    """
    return f"kernel {name!r} has no convolution implementation"


def conv_unfold_factor(kernel_size: int) -> float:
    """Replicated share ``1 - 1 / (KH * KW)`` of the im2col unfolding.

    The single source of the expression every conv estimate scales its
    unfolding overhead by — scalar :meth:`SpMMKernel.estimate_conv` and the
    batched grid paths alike — so the batch == scalar bit-exactness cannot
    drift.  A 1x1 convolution (im2col is a pure reshape) returns 0.0.
    """
    replication = kernel_size * kernel_size
    if replication <= 1:
        return 0.0
    return 1.0 - 1.0 / replication


# --------------------------------------------------------------------------- #
# Shared traffic builders
# --------------------------------------------------------------------------- #
def weight_traffic(
    shape: GEMMShape,
    density: float,
    *,
    column_tiles: int = 1,
    value_bytes: int = BYTES_FP16,
    access_efficiency: float = 1.0,
) -> TrafficBreakdown:
    """Traffic of the (compressed) weight values.

    ``column_tiles`` is how many times the weight stream is replayed because
    the output is processed in separate N-tiles (usually 1: the weight either
    fits in L2 or the kernel keeps it resident across the N dimension).
    """
    traffic = TrafficBreakdown()
    traffic.add(
        "weight",
        shape.m * shape.k * density * value_bytes,
        reads=float(column_tiles),
        access_efficiency=access_efficiency,
    )
    return traffic


def activation_traffic(
    shape: GEMMShape,
    *,
    row_tile: int,
    kept_fraction: float = 1.0,
    value_bytes: int = BYTES_FP16,
    access_efficiency: float = 1.0,
) -> TrafficBreakdown:
    """Traffic of the dense activation matrix ``B``.

    Each tile of ``row_tile`` weight rows streams the activation rows it needs
    (``kept_fraction`` of the K dimension), so the full activation footprint is
    re-read ``ceil(M / row_tile) * kept_fraction`` times before cache
    filtering.  Larger ``row_tile`` (larger ``V``) means more reuse — this is
    where the pattern's computation-efficiency advantage materialises.
    """
    if row_tile <= 0:
        raise ValueError("row_tile must be positive")
    if not 0.0 < kept_fraction <= 1.0:
        raise ValueError("kept_fraction must be in (0, 1]")
    reads = ceil_div(shape.m, row_tile) * kept_fraction
    # The physical lower bound is ``kept_fraction`` of the footprint (the
    # compulsory traffic); a 1.0 floor here would silently discard the
    # sparsity savings whenever a single row tile covers the whole M
    # dimension.  The expression above already respects the bound
    # (``ceil_div >= 1``), so the clamp only documents the invariant.
    traffic = TrafficBreakdown()
    traffic.add(
        "activation",
        shape.k * shape.n * value_bytes,
        reads=max(kept_fraction, reads),
        access_efficiency=access_efficiency,
    )
    return traffic


def output_traffic(shape: GEMMShape, *, value_bytes: int = BYTES_FP16) -> TrafficBreakdown:
    """Traffic of the output matrix ``C`` (written once)."""
    traffic = TrafficBreakdown()
    traffic.add("output", shape.m * shape.n * value_bytes, is_write=True)
    return traffic


def merge_traffic(*parts: TrafficBreakdown) -> TrafficBreakdown:
    """Combine several traffic breakdowns into one."""
    merged = TrafficBreakdown()
    for part in parts:
        merged.operands.extend(part.operands)
    return merged


# --------------------------------------------------------------------------- #
# Batched (array-accepting) traffic builders — element-wise twins of the
# scalar builders above, consumed by the kernels' build_launch_batch
# overrides.  ``ms``/``ns``/``ks``/``densities`` carry one entry per grid
# cell; every expression mirrors its scalar twin term by term so a batched
# estimate reproduces the scalar one bit for bit.
# --------------------------------------------------------------------------- #
def shape_arrays(
    shapes,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split a list of GEMM shapes into ``(ms, ns, ks)`` int64 arrays.

    Callers on the hot path may pass a pre-built ``(ms, ns, ks)`` array
    triple instead of shape objects (the sweep executor caches these per
    workload); it is returned as-is.
    """
    if isinstance(shapes, tuple) and len(shapes) == 3 and isinstance(shapes[0], np.ndarray):
        return shapes
    ms = np.array([shape.m for shape in shapes], dtype=np.int64)
    ns = np.array([shape.n for shape in shapes], dtype=np.int64)
    ks = np.array([shape.k for shape in shapes], dtype=np.int64)
    return ms, ns, ks


def weight_traffic_grid(
    ms: np.ndarray,
    ks: np.ndarray,
    densities: np.ndarray,
    *,
    column_tiles: np.ndarray | float = 1.0,
    value_bytes: int = BYTES_FP16,
    access_efficiency: float = 1.0,
) -> TrafficBatch:
    """Element-wise :func:`weight_traffic`."""
    traffic = TrafficBatch(len(ms))
    traffic.add(
        "weight",
        ms * ks * densities * value_bytes,
        reads=np.asarray(column_tiles, dtype=np.float64),
        access_efficiency=access_efficiency,
        validate=False,
    )
    return traffic


def activation_traffic_grid(
    ms: np.ndarray,
    ns: np.ndarray,
    ks: np.ndarray,
    *,
    row_tile: np.ndarray | int,
    kept_fraction: np.ndarray | float = 1.0,
    value_bytes: int = BYTES_FP16,
    access_efficiency: float = 1.0,
    row_tiles: np.ndarray | None = None,
) -> TrafficBatch:
    """Element-wise :func:`activation_traffic`.

    ``row_tiles`` optionally passes a precomputed ``ceil(ms / row_tile)``
    (kernels that also need the quotient for their grid reuse it here).
    """
    row_tile = np.asarray(row_tile)
    if anytrue(row_tile <= 0):
        raise ValueError("row_tile must be positive")
    kept_fraction = np.asarray(kept_fraction, dtype=np.float64)
    if anytrue((kept_fraction <= 0.0) | (kept_fraction > 1.0)):
        raise ValueError("kept_fraction must be in (0, 1]")
    if row_tiles is None:
        row_tiles = ceil_div_array(ms, row_tile)
    reads = row_tiles * kept_fraction
    traffic = TrafficBatch(len(ms))
    traffic.add(
        "activation",
        ks * ns * value_bytes,
        reads=np.maximum(kept_fraction, reads),
        access_efficiency=access_efficiency,
        validate=False,
    )
    return traffic


def output_traffic_grid(
    ms: np.ndarray, ns: np.ndarray, *, value_bytes: int = BYTES_FP16
) -> TrafficBatch:
    """Element-wise :func:`output_traffic`."""
    traffic = TrafficBatch(len(ms))
    traffic.add("output", ms * ns * value_bytes, is_write=True, validate=False)
    return traffic


def merge_traffic_grid(*parts: TrafficBatch) -> TrafficBatch:
    """Combine several traffic batches into one (slot order preserved)."""
    merged = TrafficBatch(parts[0].size if parts else 0)
    for part in parts:
        if part.size != merged.size:
            raise ValueError("cannot merge traffic batches of different sizes")
        merged.slots.extend(part.slots)
    return merged


# --------------------------------------------------------------------------- #
# Prepare cache helpers
# --------------------------------------------------------------------------- #
def _freeze_prepare_arg(value):
    """Hashable cache-key token for one ``prepare`` argument."""
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        digest = hashlib.blake2b(arr.tobytes(), digest_size=16).hexdigest()
        return ("ndarray", arr.shape, str(arr.dtype), digest)
    return value


def prepare_cache_key(weight: np.ndarray, **kwargs) -> tuple:
    """Cache key identifying one (weight, prepare-kwargs) combination."""
    return (
        _freeze_prepare_arg(weight),
        tuple(sorted((k, _freeze_prepare_arg(v)) for k, v in kwargs.items())),
    )


# --------------------------------------------------------------------------- #
# Capability metadata
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class KernelCapabilities:
    """Declarative constraint metadata of one kernel.

    This is the *static* half of applicability: everything a kernel can rule
    out from its class attributes alone, before the timing model runs.  The
    autotuner (:mod:`repro.tune`) uses it to prune infeasible candidates
    cheaply; the dynamic half (shape-dependent rejections) still surfaces as
    :class:`KernelNotApplicableError` from ``estimate``.
    """

    name: str
    pattern: str
    supports_conv: bool
    supported_archs: tuple[str, ...] | None
    fixed_density: float | None
    requires_sparse_tensor_core: bool

    @property
    def is_dense(self) -> bool:
        """Dense kernels ignore weight sparsity and always time the full GEMM."""
        return self.pattern == PatternKind.DENSE.value

    def infeasible_reason(
        self, arch: GPUArch, *, kind: str = "linear", density: float = 1.0
    ) -> str | None:
        """Why this kernel cannot run the given cell, or ``None`` if it can.

        ``kind`` is the layer kind (``"linear"`` / ``"conv"``) and ``density``
        the weight non-zero fraction; dense kernels accept any density (they
        simply do not exploit the zeros).
        """
        if self.supported_archs is not None and arch.name not in self.supported_archs:
            return (
                f"kernel {self.name!r} only runs on {', '.join(self.supported_archs)}"
            )
        if self.requires_sparse_tensor_core and not arch.supports_sparse_tensor_core:
            return f"{arch.name} has no sparse tensor cores"
        if kind == "conv" and not self.supports_conv:
            return no_conv_support_detail(self.name)
        if (
            not self.is_dense
            and self.fixed_density is not None
            and abs(density - self.fixed_density) > 1e-9
        ):
            return (
                f"kernel {self.name!r} only supports density "
                f"{self.fixed_density}, got {density}"
            )
        return None


# --------------------------------------------------------------------------- #
# Kernel interface
# --------------------------------------------------------------------------- #
class SpMMKernel(abc.ABC):
    """A weight-sparse (or dense) matrix-multiplication kernel.

    Concrete kernels provide three things:

    * :meth:`prepare` — compress a dense (pruned) weight matrix into the
      kernel's storage format,
    * :meth:`run` — functional execution ``C = A @ B`` on numpy arrays,
    * :meth:`build_launch` — the performance description consumed by the GPU
      timing model.
    """

    #: Human-readable kernel name used in benchmark tables.
    name: str = "abstract"
    #: Sparsity pattern the kernel consumes.
    pattern: PatternKind = PatternKind.DENSE
    #: Whether the kernel has an implicit-GEMM convolution variant
    #: (the paper's baselines all lack one; ours and the dense library have it).
    supports_conv: bool = False
    #: Architectures the kernel runs on (``None`` means every modelled GPU).
    supported_archs: tuple[str, ...] | None = None
    #: The single weight density the format supports (``None`` means any);
    #: e.g. balanced 2:4 is pinned to 0.5.
    fixed_density: float | None = None
    #: Whether the kernel needs A100-style sparse tensor cores.
    requires_sparse_tensor_core: bool = False
    #: How many compressed weights :meth:`prepare_cached` keeps per kernel.
    prepare_cache_size: int = 8
    #: Whether :meth:`build_launch` / :meth:`build_launch_batch` ignore the
    #: target architecture entirely (no split-K heuristics, efficiency
    #: tables or capability gates inside the launch construction).  The
    #: batched sweep executor reuses such kernels' launch batches across
    #: GPUs instead of rebuilding them per architecture.
    launch_arch_agnostic: bool = False
    #: Fractional time overhead of the on-the-fly im2col unfolding at full
    #: ``KH x KW`` replication (1x1 convolutions unfold for free).
    conv_unfold_overhead: float = 0.05

    # -------------------------- functional side -------------------------- #
    @abc.abstractmethod
    def prepare(self, weight: np.ndarray, **kwargs):
        """Compress a pruned dense weight matrix into the kernel's format."""

    @abc.abstractmethod
    def run(self, prepared, activations: np.ndarray) -> np.ndarray:
        """Execute the kernel functionally: return ``A @ B``."""

    def prepare_cached(self, weight: np.ndarray, **kwargs):
        """Memoised :meth:`prepare`.

        Compressing a weight matrix is the expensive offline half of every
        kernel; inference-style workloads run the same weights against many
        activation batches, so the compressed format is cached per kernel
        instance (LRU, :attr:`prepare_cache_size` entries) keyed by the
        weight bytes and the prepare arguments.
        """
        cache: OrderedDict = self.__dict__.setdefault("_prepare_cache", OrderedDict())
        key = prepare_cache_key(weight, **kwargs)
        prepared = cache.get(key)
        if prepared is not None:
            cache.move_to_end(key)
            return prepared
        prepared = self.prepare(weight, **kwargs)
        cache[key] = prepared
        while len(cache) > self.prepare_cache_size:
            cache.popitem(last=False)
        return prepared

    def matmul(self, weight: np.ndarray, activations: np.ndarray, **kwargs) -> np.ndarray:
        """Convenience: cached ``prepare`` + ``run`` in one call."""
        return self.run(self.prepare_cached(weight, **kwargs), activations)

    # -------------------------- performance side ------------------------- #
    @abc.abstractmethod
    def build_launch(
        self, arch: GPUArch, shape: GEMMShape, density: float, **kwargs
    ) -> KernelLaunch:
        """Describe one launch of this kernel for the timing model."""

    def estimate(
        self, arch: GPUArch, shape: GEMMShape, density: float, **kwargs
    ) -> KernelTiming:
        """Estimate the execution time of the kernel on ``arch``."""
        launch = self.build_launch(arch, shape, density, **kwargs)
        return simulate(arch, launch)

    def build_launch_batch(
        self,
        arch: GPUArch,
        shapes: list[GEMMShape],
        densities: np.ndarray,
        **kwargs,
    ) -> LaunchBatch:
        """Describe one launch per ``(shape, density)`` cell as one batch.

        The generic fallback stacks scalar :meth:`build_launch` calls, which
        vectorizes the simulator but not the launch construction; the
        registry kernels override this with fully vectorized builders.  Any
        cell the kernel cannot run raises exactly as :meth:`build_launch`
        does (the batch is all-or-nothing; callers needing per-cell
        applicability fall back to the scalar path).
        """
        launches = [
            self.build_launch(arch, shape, float(density), **kwargs)
            for shape, density in zip(shapes, densities, strict=True)
        ]
        return LaunchBatch.from_launches(launches)

    def estimate_grid(
        self,
        arch: GPUArch,
        shapes: list[GEMMShape],
        densities: np.ndarray,
        **kwargs,
    ) -> TimingBatch:
        """Estimate every ``(shape, density)`` cell of a grid in one batch.

        The batched twin of :meth:`estimate`: ``shapes`` and ``densities``
        are parallel sequences (one entry per cell — callers expand their
        own cross products), and cell ``i`` of the returned
        :class:`~repro.gpu.simulator.TimingBatch` is bit-identical to
        ``estimate(arch, shapes[i], densities[i])``.
        """
        batch = self.build_launch_batch(
            arch, list(shapes), np.asarray(densities, dtype=np.float64), **kwargs
        )
        return simulate_batch(arch, batch)

    def estimate_conv(
        self,
        arch: GPUArch,
        spec: Conv2dSpec,
        density: float,
        *,
        batch: int,
        height: int,
        width: int,
        **kwargs,
    ) -> KernelTiming:
        """Estimate an implicit-GEMM convolution with this kernel.

        The unfolding adds activation traffic (each input value is read
        ``KH * KW`` times across output positions, largely caught on chip),
        which we approximate with a small fixed overhead on top of the GEMM
        estimate: :attr:`conv_unfold_overhead` at full replication, scaled
        by the replicated share ``1 - 1 / (KH * KW)`` so a 1x1 convolution
        (whose im2col is a pure reshape) pays nothing.
        """
        if not self.supports_conv:
            raise KernelNotApplicableError(no_conv_support_detail(self.name))
        shape = conv_to_gemm_shape(spec, batch, height, width)
        timing = self.estimate(arch, shape, density, **kwargs)
        factor = conv_unfold_factor(spec.kernel_size)
        if factor == 0.0:
            return timing
        unfold_s = timing.total_time_s * self.conv_unfold_overhead * factor
        return dataclasses.replace(
            timing,
            total_time_s=timing.total_time_s + unfold_s,
            overhead_s=timing.overhead_s + unfold_s,
        )

    # ------------------------------ misc -------------------------------- #
    def capabilities(self) -> KernelCapabilities:
        """The kernel's declarative constraint metadata (for candidate
        pruning in :mod:`repro.tune`)."""
        return KernelCapabilities(
            name=self.name,
            pattern=self.pattern.value,
            supports_conv=self.supports_conv,
            supported_archs=self.supported_archs,
            fixed_density=self.fixed_density,
            requires_sparse_tensor_core=self.requires_sparse_tensor_core,
        )

    def metadata_bytes(self, shape: GEMMShape, density: float, **kwargs) -> float:
        """Bytes of sparse metadata the format needs (0 for dense kernels)."""
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} pattern={self.pattern.value}>"
