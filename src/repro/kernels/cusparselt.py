"""Balanced 2:4 SpMM baseline (cuSPARSELt on A100 sparse tensor cores).

The A100 sparse tensor core doubles the MMA rate for matrices pruned to the
2-in-4 balanced pattern.  The paper highlights two limitations (Sections 1 and
6.2): the sparsity level is fixed at 50 %, and the kernel remains memory bound
because the dense activation operand is loaded in full before the effective
operands are selected — so the measured speedup is only 1.07-1.16x on A100.
Architectures without sparse tensor cores gain no compute benefit at all.
"""

from __future__ import annotations

import numpy as np

from ..core.pattern import PatternKind
from ..gpu.arch import GPUArch
from ..gpu.memory import TrafficBatch, TrafficBreakdown
from ..gpu.simulator import ComputeUnit, KernelLaunch, LaunchBatch
from ..gpu.tensorcore import ceil_div, ceil_div_array
from ..gpu.tiling import default_gemm_tile, default_gemm_tile_grid
from ..sparse.convert import dense_to_balanced
from ..sparse.formats import Balanced24Matrix
from ..sparse.spmm import spmm_balanced
from .base import (
    GEMMShape,
    KernelNotApplicableError,
    SpMMKernel,
    activation_traffic,
    activation_traffic_grid,
    merge_traffic,
    merge_traffic_grid,
    output_traffic,
    output_traffic_grid,
    shape_arrays,
    weight_traffic,
    weight_traffic_grid,
)

__all__ = ["CusparseLtKernel"]


class CusparseLtKernel(SpMMKernel):
    """cuSPARSELt balanced 2:4 SpMM."""

    name = "cusparselt-2in4"
    pattern = PatternKind.BALANCED
    supports_conv = False
    requires_sparse_tensor_core = True

    compute_efficiency = 0.80
    bandwidth_efficiency = 0.85

    #: The pattern keeps exactly 2 of every 4 values.
    fixed_density = 0.5
    #: Metadata is a 2-bit position index per kept value.
    metadata_bits_per_kept = 2

    def prepare(self, weight: np.ndarray, **kwargs) -> Balanced24Matrix:
        return dense_to_balanced(weight)

    def run(self, prepared: Balanced24Matrix, activations: np.ndarray) -> np.ndarray:
        return spmm_balanced(prepared, activations)

    def metadata_bytes(self, shape: GEMMShape, density: float = 0.5, **kwargs) -> float:
        kept = shape.m * shape.k * self.fixed_density
        return kept * self.metadata_bits_per_kept / 8.0

    def check_applicable(self, arch: GPUArch, density: float) -> None:
        """Raise if the configuration cannot run on the balanced pattern."""
        if abs(density - self.fixed_density) > 1e-9:
            raise KernelNotApplicableError(
                f"balanced 2:4 sparsity only supports density {self.fixed_density}, "
                f"got {density}"
            )
        if not arch.supports_sparse_tensor_core:
            raise KernelNotApplicableError(
                f"{arch.name} has no sparse tensor cores; cuSPARSELt 2:4 SpMM "
                "is only evaluated on A100 in the paper"
            )

    def build_launch(
        self, arch: GPUArch, shape: GEMMShape, density: float = 0.5, **kwargs
    ) -> KernelLaunch:
        self.check_applicable(arch, density)
        tile = default_gemm_tile(shape.m, shape.n, shape.k)
        n_tiles_m = ceil_div(shape.m, tile.tile_m)
        n_tiles_n = ceil_div(shape.n, tile.tile_n)
        traffic = merge_traffic(
            # Compressed weight values (half the dense size).
            weight_traffic(shape, self.fixed_density, column_tiles=n_tiles_n),
            # The dense activation operand is loaded in full; operand
            # selection happens after the load (the memory-bound issue the
            # paper points out).
            activation_traffic(shape, row_tile=tile.tile_m, kept_fraction=1.0),
            output_traffic(shape),
        )
        meta = TrafficBreakdown()
        meta.add("metadata", self.metadata_bytes(shape))
        return KernelLaunch(
            name=self.name,
            useful_flops=shape.sparse_flops(self.fixed_density),
            traffic=traffic,
            meta_traffic=meta,
            tile=tile,
            num_tiles=n_tiles_m * n_tiles_n,
            k_steps=tile.k_steps(shape.k),
            compute_unit=ComputeUnit.SPARSE_TENSOR_CORE,
            compute_efficiency=self.compute_efficiency,
            bandwidth_efficiency=self.bandwidth_efficiency,
            prefetch_metadata=True,
            meta_prefetch_steps=4,
        )

    def build_launch_batch(
        self, arch: GPUArch, shapes, densities, **kwargs
    ) -> LaunchBatch:
        """Vectorized :meth:`build_launch` over whole grids (every cell must
        sit at the balanced density on a sparse-tensor-core arch, exactly as
        :meth:`check_applicable` enforces per cell)."""
        densities = np.asarray(densities, dtype=np.float64)
        off_pattern = np.abs(densities - self.fixed_density) > 1e-9
        if np.any(off_pattern):
            bad = float(densities[np.argmax(off_pattern)])
            raise KernelNotApplicableError(
                f"balanced 2:4 sparsity only supports density {self.fixed_density}, "
                f"got {bad}"
            )
        if not arch.supports_sparse_tensor_core:
            raise KernelNotApplicableError(
                f"{arch.name} has no sparse tensor cores; cuSPARSELt 2:4 SpMM "
                "is only evaluated on A100 in the paper"
            )
        ms, ns, ks = shape_arrays(shapes)
        tile_m, tile_n, tile_k = default_gemm_tile_grid(ms, ns, ks)
        traffic = merge_traffic_grid(
            weight_traffic_grid(
                ms,
                ks,
                self.fixed_density,
                column_tiles=ceil_div_array(ns, tile_n),
            ),
            activation_traffic_grid(ms, ns, ks, row_tile=tile_m, kept_fraction=1.0),
            output_traffic_grid(ms, ns),
        )
        meta = TrafficBatch(len(ms))
        meta.add(
            "metadata",
            ms * ks * self.fixed_density * self.metadata_bits_per_kept / 8.0,
        )
        return LaunchBatch(
            validate=False,
            names=[self.name],
            useful_flops=2.0 * ms * ns * ks * self.fixed_density,
            traffic=traffic,
            meta_traffic=meta,
            tile_m=tile_m,
            tile_n=tile_n,
            tile_k=tile_k,
            num_tiles=ceil_div_array(ms, tile_m) * ceil_div_array(ns, tile_n),
            k_steps=ceil_div_array(ks, tile_k),
            compute_unit=ComputeUnit.SPARSE_TENSOR_CORE,
            compute_efficiency=self.compute_efficiency,
            bandwidth_efficiency=self.bandwidth_efficiency,
            prefetch_metadata=True,
            meta_prefetch_steps=4,
        )
