"""Functional (numpy) SpMM reference kernels for every sparse format.

These are the *correctness* halves of the kernels in :mod:`repro.kernels`:
each one computes ``C = A @ B`` where ``A`` is an ``(M, K)`` sparse weight
matrix and ``B`` a dense ``(K, N)`` activation matrix, following the data
movement of the corresponding GPU kernel closely enough that the structural
techniques of the paper (in-buffer stitching, reordered write-back) are
exercised rather than shortcut through ``to_dense()``.
"""

from __future__ import annotations

import numpy as np

from .convert import vector_wise_to_block
from .formats import (
    Balanced24Matrix,
    BlockSparseMatrix,
    CSRMatrix,
    ShflBWMatrix,
    VectorSparseMatrix,
)

__all__ = [
    "dense_gemm",
    "spmm_csr",
    "spmm_block",
    "spmm_vector_wise",
    "spmm_shflbw",
    "spmm_balanced",
    "spmm",
]


def _check_rhs(shape: tuple[int, int], rhs: np.ndarray) -> np.ndarray:
    rhs = np.asarray(rhs, dtype=np.float64)
    if rhs.ndim != 2:
        raise ValueError(f"expected a 2-D dense matrix, got shape {rhs.shape}")
    if rhs.shape[0] != shape[1]:
        raise ValueError(
            f"dimension mismatch: sparse K={shape[1]} vs dense rows={rhs.shape[0]}"
        )
    return rhs


def dense_gemm(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Plain dense GEMM reference (the cuBLAS stand-in)."""
    lhs = np.asarray(lhs, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    return lhs @ rhs


def spmm_csr(matrix: CSRMatrix, rhs: np.ndarray) -> np.ndarray:
    """Row-wise CSR SpMM (the Sputnik-style unstructured kernel)."""
    rhs = _check_rhs(matrix.shape, rhs)
    m, _ = matrix.shape
    out = np.zeros((m, rhs.shape[1]), dtype=np.float64)
    for i in range(m):
        start, end = matrix.indptr[i], matrix.indptr[i + 1]
        if start == end:
            continue
        cols = matrix.indices[start:end]
        vals = matrix.data[start:end]
        out[i] = vals @ rhs[cols, :]
    return out


def spmm_block(matrix: BlockSparseMatrix, rhs: np.ndarray) -> np.ndarray:
    """Block-wise SpMM: one dense ``V x V`` GEMM per stored block."""
    rhs = _check_rhs(matrix.shape, rhs)
    m, _ = matrix.shape
    v = matrix.block_size
    out = np.zeros((m, rhs.shape[1]), dtype=np.float64)
    for bi in range(matrix.num_block_rows):
        start, end = matrix.block_indptr[bi], matrix.block_indptr[bi + 1]
        acc = np.zeros((v, rhs.shape[1]), dtype=np.float64)
        for pos in range(start, end):
            bj = matrix.block_indices[pos]
            acc += matrix.data[pos] @ rhs[bj * v : (bj + 1) * v, :]
        out[bi * v : (bi + 1) * v, :] = acc
    return out


def spmm_vector_wise(matrix: VectorSparseMatrix, rhs: np.ndarray) -> np.ndarray:
    """Vector-wise SpMM: gather the kept activation rows of each group, then
    run one dense panel GEMM per group (our vector-wise kernel)."""
    rhs = _check_rhs(matrix.shape, rhs)
    m, _ = matrix.shape
    v = matrix.vector_size
    out = np.zeros((m, rhs.shape[1]), dtype=np.float64)
    for g in range(matrix.num_groups):
        cols = matrix.group_columns[g]
        if len(cols) == 0:
            continue
        gathered = rhs[cols, :]
        out[g * v : (g + 1) * v, :] = matrix.group_values[g] @ gathered
    return out


def spmm_shflbw(
    matrix: ShflBWMatrix, rhs: np.ndarray, *, tile_cols: int | None = None
) -> np.ndarray:
    """Shfl-BW SpMM following the GPU kernel structure (Figure 4).

    Steps mirrored from the kernel:

    1. the matrix is already stored in permuted vector-wise form (offline
       step (a)),
    2. each row group's kept columns are stitched into dense ``V x tile``
       panels; the matching activation rows are gathered to form the other
       tile (in-buffer stitching, step (b)),
    3. a dense panel GEMM accumulates the group's output tile (tensor-core
       MMA, step (c)),
    4. the output tile is written to the *original* row positions using the
       stored row indices (reordered write-back, step (e)).
    """
    rhs = _check_rhs(matrix.shape, rhs)
    n = rhs.shape[1]
    m = matrix.shape[0]
    v = matrix.vector_size
    out = np.zeros((m, n), dtype=np.float64)

    panels_per_group = vector_wise_to_block(matrix.vector_matrix, tile_cols=tile_cols)
    for g, panels in enumerate(panels_per_group):
        acc = np.zeros((v, n), dtype=np.float64)
        for panel in panels:
            cols = panel["columns"]
            values = panel["values"]
            valid = cols >= 0
            # In-buffer stitching: gather the activation rows named by the
            # column indices; padded lanes contribute zero.
            stitched = np.zeros((len(cols), n), dtype=np.float64)
            stitched[valid, :] = rhs[cols[valid], :]
            acc += values @ stitched
        original_rows = matrix.row_indices[g * v : (g + 1) * v]
        # Reordered write-back: results land directly in the original rows.
        out[original_rows, :] = acc
    return out


def spmm_balanced(matrix: Balanced24Matrix, rhs: np.ndarray) -> np.ndarray:
    """Balanced n:m SpMM: select operands by position metadata, then multiply."""
    rhs = _check_rhs(matrix.shape, rhs)
    rows, k = matrix.shape
    n_out = rhs.shape[1]
    out = np.zeros((rows, n_out), dtype=np.float64)
    values = matrix.values.reshape(rows, k // matrix.m, matrix.n)
    positions = matrix.positions.reshape(rows, k // matrix.m, matrix.n)
    group_base = (np.arange(k // matrix.m) * matrix.m)[None, :, None]
    cols = positions + group_base  # absolute column index per kept value
    for i in range(rows):
        flat_cols = cols[i].reshape(-1)
        flat_vals = values[i].reshape(-1)
        out[i] = flat_vals @ rhs[flat_cols, :]
    return out


def spmm(matrix, rhs: np.ndarray) -> np.ndarray:
    """Dispatch to the reference SpMM matching the matrix format."""
    if isinstance(matrix, CSRMatrix):
        return spmm_csr(matrix, rhs)
    if isinstance(matrix, BlockSparseMatrix):
        return spmm_block(matrix, rhs)
    if isinstance(matrix, ShflBWMatrix):
        return spmm_shflbw(matrix, rhs)
    if isinstance(matrix, VectorSparseMatrix):
        return spmm_vector_wise(matrix, rhs)
    if isinstance(matrix, Balanced24Matrix):
        return spmm_balanced(matrix, rhs)
    if isinstance(matrix, np.ndarray):
        return dense_gemm(matrix, rhs)
    raise TypeError(f"unsupported sparse matrix type {type(matrix).__name__}")
