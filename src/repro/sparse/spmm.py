"""Functional (numpy) SpMM reference kernels for every sparse format.

These are the *correctness* halves of the kernels in :mod:`repro.kernels`:
each one computes ``C = A @ B`` where ``A`` is an ``(M, K)`` sparse weight
matrix and ``B`` a dense ``(K, N)`` activation matrix, following the data
movement of the corresponding GPU kernel closely enough that the structural
techniques of the paper (in-buffer stitching, reordered write-back) are
exercised rather than shortcut through ``to_dense()``.

The kernels are fully vectorized: batched gathers, ``matmul`` over stacked
panels and ``np.add.reduceat`` segment reductions replace the per-row and
per-group Python loops of the original implementations.  The originals live
on in :mod:`repro.sparse.spmm_reference` as the oracle the property-based
tests and ``benchmarks/bench_spmm_vectorized.py`` compare against.

Two caches keep repeated calls cheap:

* the stitched-panel view consumed by the vector-wise / Shfl-BW kernels is
  memoised per matrix and tile width (:func:`repro.sparse.convert.stitched_panels`),
* the CSR kernel memoises its ``scipy.sparse`` handle on the matrix when
  scipy is available (a pure-numpy segment-reduction path covers the case
  where it is not).
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised implicitly on hosts with scipy
    import scipy.sparse as _scipy_sparse
except ImportError:  # pragma: no cover - scipy is optional
    _scipy_sparse = None

from .convert import stitched_panels
from .formats import (
    Balanced24Matrix,
    BlockSparseMatrix,
    CSRMatrix,
    ShflBWMatrix,
    VectorSparseMatrix,
)

__all__ = [
    "dense_gemm",
    "spmm_csr",
    "spmm_block",
    "spmm_vector_wise",
    "spmm_shflbw",
    "spmm_balanced",
    "spmm",
]


def _check_rhs(shape: tuple[int, int], rhs: np.ndarray) -> np.ndarray:
    rhs = np.asarray(rhs, dtype=np.float64)
    if rhs.ndim != 2:
        raise ValueError(f"expected a 2-D dense matrix, got shape {rhs.shape}")
    if rhs.shape[0] != shape[1]:
        raise ValueError(
            f"dimension mismatch: sparse K={shape[1]} vs dense rows={rhs.shape[0]}"
        )
    return rhs


def _segment_rows(
    contributions: np.ndarray, indptr: np.ndarray, num_segments: int
) -> np.ndarray:
    """Sum ``contributions`` into ``num_segments`` row segments.

    ``contributions`` holds one stacked entry per stored element (any shape
    after the first axis); segment ``i`` owns entries
    ``indptr[i]:indptr[i + 1]``.  Empty segments sum to zero.  Implemented
    with ``np.add.reduceat`` restricted to non-empty segments, which sidesteps
    reduceat's surprising handling of empty slices.
    """
    out = np.zeros((num_segments,) + contributions.shape[1:], dtype=np.float64)
    nonempty = np.flatnonzero(np.diff(indptr))
    if len(nonempty):
        out[nonempty] = np.add.reduceat(contributions, indptr[:-1][nonempty], axis=0)
    return out


def dense_gemm(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Plain dense GEMM reference (the cuBLAS stand-in)."""
    lhs = np.asarray(lhs, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    return lhs @ rhs


def spmm_csr(matrix: CSRMatrix, rhs: np.ndarray) -> np.ndarray:
    """Row-wise CSR SpMM (the Sputnik-style unstructured kernel).

    Uses a memoised ``scipy.sparse`` handle when scipy is available (the
    fastest CSR row-gather engine on the host), falling back to a batched
    gather + segment reduction in pure numpy.
    """
    rhs = _check_rhs(matrix.shape, rhs)
    m, _ = matrix.shape
    if matrix.nnz == 0:
        return np.zeros((m, rhs.shape[1]), dtype=np.float64)
    if _scipy_sparse is not None:
        handle = matrix.__dict__.get("_scipy_handle")
        if handle is None:
            handle = _scipy_sparse.csr_matrix(
                (matrix.data, matrix.indices, matrix.indptr), shape=matrix.shape
            )
            matrix.__dict__["_scipy_handle"] = handle
        return np.asarray(handle @ rhs)
    gathered = rhs[matrix.indices]
    gathered *= matrix.data[:, None]
    return _segment_rows(gathered, matrix.indptr, m)


def spmm_block(matrix: BlockSparseMatrix, rhs: np.ndarray) -> np.ndarray:
    """Block-wise SpMM: batched ``V x V`` GEMMs over all stored blocks."""
    rhs = _check_rhs(matrix.shape, rhs)
    m, k = matrix.shape
    v = matrix.block_size
    n = rhs.shape[1]
    if matrix.nnz_blocks == 0:
        return np.zeros((m, n), dtype=np.float64)
    rhs_blocks = rhs.reshape(k // v, v, n)[matrix.block_indices]
    products = np.matmul(matrix.data, rhs_blocks)  # (n_blocks, V, N)
    acc = _segment_rows(products, matrix.block_indptr, matrix.num_block_rows)
    return acc.reshape(m, n)


def _spmm_stitched(
    matrix: VectorSparseMatrix, rhs: np.ndarray, tile_cols: int | None
) -> np.ndarray:
    """Shared stitched-panel SpMM over a vector-wise matrix.

    Mirrors the GPU kernel: gather the activation rows named by each panel's
    stitched columns (in-buffer stitching), run one batched panel GEMM over
    all panels (tensor-core MMA), and segment-sum the panels of each group.
    Returns the output in the matrix's own (group-contiguous) row order.
    """
    panels = stitched_panels(matrix, tile_cols)
    n = rhs.shape[1]
    if panels.num_panels == 0:
        return np.zeros((matrix.shape[0], n), dtype=np.float64)
    # Padded lanes index row 0 but carry zero weights, so no masking needed.
    gathered = rhs[panels.gather_columns]  # (P, tile, N)
    products = np.matmul(panels.values, gathered)  # (P, V, N)
    acc = _segment_rows(products, panels.group_indptr, panels.num_groups)
    return acc.reshape(matrix.shape[0], n)


def spmm_vector_wise(matrix: VectorSparseMatrix, rhs: np.ndarray) -> np.ndarray:
    """Vector-wise SpMM: gather the kept activation rows of each group, then
    run one batched dense panel GEMM over all groups (our vector-wise kernel).

    Panels are sized to the *mean* group width: uniformly sparse matrices get
    one panel per group (a single batched ``matmul``), while skewed matrices
    stay bounded — total padding never exceeds the stored values plus one
    tile per group, unlike padding every group to the widest one.
    """
    rhs = _check_rhs(matrix.shape, rhs)
    widths = [len(c) for c in matrix.group_columns]
    total = sum(widths)
    if total == 0:
        return np.zeros((matrix.shape[0], rhs.shape[1]), dtype=np.float64)
    tile = min(max(widths), -(-total // len(widths)))
    return _spmm_stitched(matrix, rhs, tile_cols=tile)


def spmm_shflbw(
    matrix: ShflBWMatrix, rhs: np.ndarray, *, tile_cols: int | None = None
) -> np.ndarray:
    """Shfl-BW SpMM following the GPU kernel structure (Figure 4).

    Steps mirrored from the kernel:

    1. the matrix is already stored in permuted vector-wise form (offline
       step (a)),
    2. each row group's kept columns are stitched into dense ``V x tile``
       panels; the matching activation rows are gathered to form the other
       tile (in-buffer stitching, step (b)) — the stitched panels are
       memoised on the matrix, so repeated calls skip the offline step,
    3. one batched panel GEMM accumulates every group's output tile
       (tensor-core MMA, step (c)),
    4. the output tiles are written to the *original* row positions using the
       stored row indices (reordered write-back, step (e)).
    """
    rhs = _check_rhs(matrix.shape, rhs)
    permuted = _spmm_stitched(matrix.vector_matrix, rhs, tile_cols)
    out = np.zeros_like(permuted)
    # Reordered write-back: results land directly in the original rows.
    out[matrix.row_indices] = permuted
    return out


def spmm_balanced(matrix: Balanced24Matrix, rhs: np.ndarray) -> np.ndarray:
    """Balanced n:m SpMM: select operands by position metadata, then run one
    batched row-vector GEMM over the compacted values."""
    rhs = _check_rhs(matrix.shape, rhs)
    rows, k = matrix.shape
    n_out = rhs.shape[1]
    if matrix.nnz == 0:
        return np.zeros((rows, n_out), dtype=np.float64)
    kept = matrix.values.shape[1]
    group_base = np.repeat(
        np.arange(k // matrix.m, dtype=np.int64) * matrix.m, matrix.n
    )
    cols = matrix.positions + group_base[None, :]  # absolute column per value
    out = np.empty((rows, n_out), dtype=np.float64)
    # Chunk the batched gather so the (chunk, kept, N) intermediate stays
    # cache resident; the buffers are reused across chunks so the gather
    # never streams a large intermediate through DRAM.
    chunk = max(1, min(rows, int(2**17 // max(1, kept * n_out))))
    gathered = np.empty((chunk * kept, n_out), dtype=np.float64)
    products = np.empty((chunk, 1, n_out), dtype=np.float64)
    for r0 in range(0, rows, chunk):
        r1 = min(r0 + chunk, rows)
        c = r1 - r0
        np.take(rhs, cols[r0:r1].reshape(-1), axis=0, out=gathered[: c * kept])
        np.matmul(
            matrix.values[r0:r1, None, :],
            gathered[: c * kept].reshape(c, kept, n_out),
            out=products[:c],
        )
        out[r0:r1] = products[:c, 0, :]
    return out


def spmm(matrix, rhs: np.ndarray) -> np.ndarray:
    """Dispatch to the reference SpMM matching the matrix format."""
    if isinstance(matrix, CSRMatrix):
        return spmm_csr(matrix, rhs)
    if isinstance(matrix, BlockSparseMatrix):
        return spmm_block(matrix, rhs)
    if isinstance(matrix, ShflBWMatrix):
        return spmm_shflbw(matrix, rhs)
    if isinstance(matrix, VectorSparseMatrix):
        return spmm_vector_wise(matrix, rhs)
    if isinstance(matrix, Balanced24Matrix):
        return spmm_balanced(matrix, rhs)
    if isinstance(matrix, np.ndarray):
        return dense_gemm(matrix, rhs)
    raise TypeError(f"unsupported sparse matrix type {type(matrix).__name__}")
