"""Sparse matrix formats, conversions and functional reference kernels."""

from .convert import (
    dense_to_balanced,
    dense_to_block,
    dense_to_csr,
    dense_to_shflbw,
    dense_to_vector_wise,
    identity_row_indices,
    shflbw_to_vector_wise,
    vector_wise_to_block,
)
from .formats import (
    Balanced24Matrix,
    BlockSparseMatrix,
    CSRMatrix,
    ShflBWMatrix,
    VectorSparseMatrix,
)
from .spconv import Conv2dSpec, conv2d_dense, conv2d_sparse, im2col, weight_to_gemm
from .spmm import (
    dense_gemm,
    spmm,
    spmm_balanced,
    spmm_block,
    spmm_csr,
    spmm_shflbw,
    spmm_vector_wise,
)
from .validate import (
    density,
    is_balanced,
    is_blockwise,
    is_shflbw,
    is_vector_wise,
    sparsity,
)

__all__ = [
    "Balanced24Matrix",
    "BlockSparseMatrix",
    "CSRMatrix",
    "ShflBWMatrix",
    "VectorSparseMatrix",
    "dense_to_balanced",
    "dense_to_block",
    "dense_to_csr",
    "dense_to_shflbw",
    "dense_to_vector_wise",
    "identity_row_indices",
    "shflbw_to_vector_wise",
    "vector_wise_to_block",
    "Conv2dSpec",
    "conv2d_dense",
    "conv2d_sparse",
    "im2col",
    "weight_to_gemm",
    "dense_gemm",
    "spmm",
    "spmm_balanced",
    "spmm_block",
    "spmm_csr",
    "spmm_shflbw",
    "spmm_vector_wise",
    "density",
    "is_balanced",
    "is_blockwise",
    "is_shflbw",
    "is_vector_wise",
    "sparsity",
]
