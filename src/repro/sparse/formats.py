"""Sparse-matrix storage formats used throughout the reproduction.

The paper's kernels operate on four weight-sparsity patterns (Figure 3):

* **unstructured** — arbitrary non-zero positions, stored here as CSR,
* **block-wise** — non-zeros clustered in ``V x V`` blocks (BSR),
* **vector-wise** — non-zeros clustered in ``V x 1`` column vectors within
  groups of ``V`` consecutive rows,
* **Shfl-BW** — vector-wise sparsity *after* an arbitrary row permutation:
  rows sharing a column support may live anywhere in the matrix; the format
  stores the permutation (``row_indices``) so the kernel can perform the
  reordered write-back described in Section 4.2,
* **balanced 2:4** — two non-zeros in every group of four consecutive values
  in a row (the A100 sparse-tensor-core pattern).

Every container knows how to reconstruct the dense matrix (`to_dense`), which
is what the functional SpMM references and the test-suite invariants are built
on.  Values are stored as ``float64`` numpy arrays — the dtype every
functional kernel and reference in :mod:`repro.sparse` computes in — so
conversions never round (FP16 quantisation effects are out of scope; the
performance model accounts for FP16 byte counts).

The ``from_dense`` / ``to_dense`` conversions are vectorized
(``nonzero`` / ``bincount`` / fancy indexing); the original per-row and
per-block loop implementations live on as oracles in
:mod:`repro.sparse.spmm_reference` and the property suite asserts
equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CSRMatrix",
    "BlockSparseMatrix",
    "VectorSparseMatrix",
    "ShflBWMatrix",
    "Balanced24Matrix",
]


def _as_2d_float(dense: np.ndarray) -> np.ndarray:
    arr = np.asarray(dense, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
    return arr


# --------------------------------------------------------------------------- #
# Unstructured: CSR
# --------------------------------------------------------------------------- #
@dataclass
class CSRMatrix:
    """Compressed sparse row matrix (unstructured sparsity).

    Attributes
    ----------
    shape:
        ``(M, K)`` dense shape.
    data:
        Non-zero values, length ``nnz``.
    indices:
        Column index of each non-zero, length ``nnz``.
    indptr:
        Row pointer array, length ``M + 1``.
    """

    shape: tuple[int, int]
    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        m, k = self.shape
        if len(self.indptr) != m + 1:
            raise ValueError("indptr length must be M + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.data):
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data must have the same length")
        if len(self.indices) and (self.indices.min() < 0 or self.indices.max() >= k):
            raise ValueError("column indices out of range")

    @property
    def nnz(self) -> int:
        """Number of stored non-zero values."""
        return int(len(self.data))

    @property
    def density(self) -> float:
        """Fraction of entries that are stored."""
        m, k = self.shape
        return self.nnz / float(m * k) if m * k else 0.0

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Compress a dense matrix, dropping exact zeros.

        One ``nonzero`` scan replaces the per-row loop (row-major order, so
        indices come out exactly as the loop produced them); oracle:
        :func:`repro.sparse.spmm_reference.csr_from_dense_loop`.
        """
        dense = _as_2d_float(dense)
        m, k = dense.shape
        rows, cols = np.nonzero(dense)
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=m), out=indptr[1:])
        return cls(
            shape=(m, k),
            data=dense[rows, cols],
            indices=cols.astype(np.int64),
            indptr=indptr,
        )

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense matrix (one fancy-indexed scatter)."""
        m, k = self.shape
        out = np.zeros((m, k), dtype=np.float64)
        rows = np.repeat(np.arange(m), np.diff(self.indptr))
        out[rows, self.indices] = self.data
        return out

    def row_nnz(self) -> np.ndarray:
        """Non-zeros per row."""
        return np.diff(self.indptr)


# --------------------------------------------------------------------------- #
# Block-wise: BSR with square V x V blocks
# --------------------------------------------------------------------------- #
@dataclass
class BlockSparseMatrix:
    """Block-compressed sparse row matrix with square ``V x V`` blocks.

    Attributes
    ----------
    shape:
        Dense shape ``(M, K)``; both must be multiples of ``block_size``.
    block_size:
        Edge length ``V`` of each block.
    data:
        Stored blocks, shape ``(n_blocks, V, V)``.
    block_indices:
        Block-column index of each stored block.
    block_indptr:
        Block-row pointer array of length ``M / V + 1``.
    """

    shape: tuple[int, int]
    block_size: int
    data: np.ndarray
    block_indices: np.ndarray
    block_indptr: np.ndarray

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float64)
        self.block_indices = np.asarray(self.block_indices, dtype=np.int64)
        self.block_indptr = np.asarray(self.block_indptr, dtype=np.int64)
        m, k = self.shape
        v = self.block_size
        if v <= 0:
            raise ValueError("block_size must be positive")
        if m % v or k % v:
            raise ValueError(
                f"shape {self.shape} is not divisible by block_size {v}"
            )
        if self.data.ndim != 3 or self.data.shape[1:] != (v, v):
            raise ValueError("data must have shape (n_blocks, V, V)")
        if len(self.block_indptr) != m // v + 1:
            raise ValueError("block_indptr length must be M / V + 1")
        if self.block_indptr[-1] != len(self.data):
            raise ValueError("block_indptr must end at the number of blocks")

    @property
    def num_block_rows(self) -> int:
        return self.shape[0] // self.block_size

    @property
    def num_block_cols(self) -> int:
        return self.shape[1] // self.block_size

    @property
    def nnz_blocks(self) -> int:
        """Number of stored blocks."""
        return int(len(self.data))

    @property
    def nnz(self) -> int:
        """Number of stored values (block storage keeps zeros inside blocks)."""
        return self.nnz_blocks * self.block_size * self.block_size

    @property
    def density(self) -> float:
        m, k = self.shape
        return self.nnz / float(m * k) if m * k else 0.0

    @classmethod
    def from_dense(cls, dense: np.ndarray, block_size: int) -> "BlockSparseMatrix":
        """Compress a dense matrix, keeping every block with any non-zero.

        A reshape/transpose view exposes the block grid and one ``nonzero``
        scan (block-row major, matching the original nested loops) selects
        the stored blocks; oracle:
        :func:`repro.sparse.spmm_reference.block_from_dense_loop`.
        """
        dense = _as_2d_float(dense)
        m, k = dense.shape
        v = block_size
        if v <= 0:
            raise ValueError("block_size must be positive")
        if m % v or k % v:
            raise ValueError(f"shape {dense.shape} is not divisible by V={v}")
        blocks = dense.reshape(m // v, v, k // v, v).transpose(0, 2, 1, 3)
        block_rows, block_cols = np.nonzero(np.any(blocks != 0.0, axis=(2, 3)))
        indptr = np.zeros(m // v + 1, dtype=np.int64)
        np.cumsum(np.bincount(block_rows, minlength=m // v), out=indptr[1:])
        data = blocks[block_rows, block_cols]
        return cls(
            shape=(m, k),
            block_size=v,
            data=data if len(data) else np.zeros((0, v, v)),
            block_indices=block_cols.astype(np.int64),
            block_indptr=indptr,
        )

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense matrix (one fancy-indexed block scatter)."""
        m, k = self.shape
        v = self.block_size
        out = np.zeros((m // v, k // v, v, v), dtype=np.float64)
        rows = np.repeat(np.arange(self.num_block_rows), np.diff(self.block_indptr))
        out[rows, self.block_indices] = self.data
        return out.transpose(0, 2, 1, 3).reshape(m, k)


# --------------------------------------------------------------------------- #
# Vector-wise: groups of V consecutive rows sharing a column support
# --------------------------------------------------------------------------- #
@dataclass
class VectorSparseMatrix:
    """Vector-wise sparse matrix (``V x 1`` pruning granularity).

    Rows are partitioned into groups of ``V`` *consecutive* rows.  Within a
    group, a column is either fully kept (all ``V`` values stored) or fully
    pruned, so the group is stored densely as a ``(V, n_cols)`` panel plus the
    kept column indices.

    Attributes
    ----------
    shape:
        Dense shape ``(M, K)``; ``M`` must be a multiple of ``vector_size``.
    vector_size:
        Group height ``V``.
    group_columns:
        One int array of kept column indices per group.
    group_values:
        One ``(V, len(columns))`` value panel per group.
    """

    shape: tuple[int, int]
    vector_size: int
    group_columns: list[np.ndarray] = field(default_factory=list)
    group_values: list[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        m, k = self.shape
        v = self.vector_size
        if v <= 0:
            raise ValueError("vector_size must be positive")
        if m % v:
            raise ValueError(f"M={m} is not divisible by V={v}")
        if len(self.group_columns) != m // v or len(self.group_values) != m // v:
            raise ValueError("one column array and value panel required per group")
        self.group_columns = [np.asarray(c, dtype=np.int64) for c in self.group_columns]
        self.group_values = [np.asarray(x, dtype=np.float64) for x in self.group_values]
        for cols, vals in zip(self.group_columns, self.group_values, strict=True):
            if vals.shape != (v, len(cols)):
                raise ValueError("value panel shape must be (V, n_cols)")
            if len(cols) and (cols.min() < 0 or cols.max() >= k):
                raise ValueError("column indices out of range")
            if len(np.unique(cols)) != len(cols):
                raise ValueError("duplicate column indices within a group")

    @property
    def num_groups(self) -> int:
        return self.shape[0] // self.vector_size

    @property
    def nnz(self) -> int:
        return int(sum(vals.size for vals in self.group_values))

    @property
    def density(self) -> float:
        m, k = self.shape
        return self.nnz / float(m * k) if m * k else 0.0

    @classmethod
    def from_dense(cls, dense: np.ndarray, vector_size: int) -> "VectorSparseMatrix":
        """Compress a dense matrix whose sparsity already follows the pattern.

        A column of a row group is kept iff any of its ``V`` values is
        non-zero; the stored panel keeps whatever values the dense matrix had
        (including zeros inside a kept vector).
        """
        dense = _as_2d_float(dense)
        m, k = dense.shape
        v = vector_size
        if m % v:
            raise ValueError(f"M={m} is not divisible by V={v}")
        columns: list[np.ndarray] = []
        values: list[np.ndarray] = []
        for g in range(m // v):
            panel = dense[g * v : (g + 1) * v, :]
            cols = np.nonzero(np.any(panel != 0.0, axis=0))[0]
            columns.append(cols)
            values.append(panel[:, cols].copy())
        return cls(shape=(m, k), vector_size=v, group_columns=columns, group_values=values)

    def to_dense(self) -> np.ndarray:
        m, k = self.shape
        v = self.vector_size
        out = np.zeros((m, k), dtype=np.float64)
        for g in range(self.num_groups):
            out[g * v : (g + 1) * v, self.group_columns[g]] = self.group_values[g]
        return out


# --------------------------------------------------------------------------- #
# Shfl-BW: vector-wise sparsity under a row permutation
# --------------------------------------------------------------------------- #
@dataclass
class ShflBWMatrix:
    """Shuffled block-wise sparse matrix (the paper's pattern).

    The matrix is stored in its *permuted* (vector-wise) form together with
    the row permutation that maps permuted rows back to their original
    positions.  ``row_indices[p]`` is the original row index of permuted row
    ``p`` — exactly the array the reordered write-back phase of the GPU kernel
    consumes (Section 4.2).

    Attributes
    ----------
    shape:
        Original dense shape ``(M, K)``.
    vector_size:
        Row-group height ``V``.
    row_indices:
        Permutation array of length ``M``; ``row_indices[p]`` is the original
        row stored at permuted position ``p``.
    vector_matrix:
        The permuted matrix in vector-wise form.
    """

    shape: tuple[int, int]
    vector_size: int
    row_indices: np.ndarray
    vector_matrix: VectorSparseMatrix

    def __post_init__(self) -> None:
        self.row_indices = np.asarray(self.row_indices, dtype=np.int64)
        m, k = self.shape
        if self.vector_matrix.shape != (m, k):
            raise ValueError("vector_matrix shape must match the dense shape")
        if self.vector_matrix.vector_size != self.vector_size:
            raise ValueError("vector_matrix vector_size mismatch")
        if len(self.row_indices) != m:
            raise ValueError("row_indices must have length M")
        if sorted(self.row_indices.tolist()) != list(range(m)):
            raise ValueError("row_indices must be a permutation of 0..M-1")

    @property
    def num_groups(self) -> int:
        return self.vector_matrix.num_groups

    @property
    def nnz(self) -> int:
        return self.vector_matrix.nnz

    @property
    def density(self) -> float:
        return self.vector_matrix.density

    @property
    def row_groups(self) -> list[np.ndarray]:
        """Original row indices of each permuted row group."""
        v = self.vector_size
        return [
            self.row_indices[g * v : (g + 1) * v] for g in range(self.num_groups)
        ]

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        vector_size: int,
        row_indices: np.ndarray,
    ) -> "ShflBWMatrix":
        """Compress a dense matrix given the row permutation to apply.

        ``row_indices`` lists, in permuted order, which original rows form
        each consecutive group of ``V`` rows.
        """
        dense = _as_2d_float(dense)
        row_indices = np.asarray(row_indices, dtype=np.int64)
        permuted = dense[row_indices, :]
        vec = VectorSparseMatrix.from_dense(permuted, vector_size)
        return cls(
            shape=dense.shape,
            vector_size=vector_size,
            row_indices=row_indices,
            vector_matrix=vec,
        )

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense matrix in the *original* row ordering."""
        permuted = self.vector_matrix.to_dense()
        out = np.zeros_like(permuted)
        out[self.row_indices, :] = permuted
        return out


# --------------------------------------------------------------------------- #
# Balanced 2:4 sparsity (A100 sparse tensor cores)
# --------------------------------------------------------------------------- #
@dataclass
class Balanced24Matrix:
    """Balanced ``n:m`` sparse matrix (default 2-in-4, as on A100).

    Every group of ``m`` consecutive values along a row keeps exactly ``n``
    values.  Stored as the compacted values plus the in-group positions.

    Attributes
    ----------
    shape:
        Dense shape ``(M, K)``; ``K`` must be a multiple of ``m``.
    n, m:
        Kept / group sizes (2 and 4 for the A100 pattern).
    values:
        Compacted values, shape ``(M, K * n / m)``.
    positions:
        In-group position (0..m-1) of each kept value, same shape as
        ``values``.
    """

    shape: tuple[int, int]
    values: np.ndarray
    positions: np.ndarray
    n: int = 2
    m: int = 4

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        self.positions = np.asarray(self.positions, dtype=np.int64)
        rows, k = self.shape
        if self.m <= 0 or not 0 < self.n <= self.m:
            raise ValueError("need 0 < n <= m")
        if k % self.m:
            raise ValueError(f"K={k} must be a multiple of m={self.m}")
        expected = (rows, k // self.m * self.n)
        if self.values.shape != expected or self.positions.shape != expected:
            raise ValueError(f"values/positions must have shape {expected}")
        if self.positions.size and (
            self.positions.min() < 0 or self.positions.max() >= self.m
        ):
            raise ValueError("positions out of range")

    @property
    def density(self) -> float:
        return self.n / self.m

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @classmethod
    def from_dense(cls, dense: np.ndarray, n: int = 2, m: int = 4) -> "Balanced24Matrix":
        """Compress a dense matrix that already satisfies the n:m pattern.

        In each group of ``m`` the ``n`` largest-magnitude values are kept
        (ties broken by position), so a matrix that does not satisfy the
        pattern is *projected* onto it.
        """
        dense = _as_2d_float(dense)
        rows, k = dense.shape
        if k % m:
            raise ValueError(f"K={k} must be a multiple of m={m}")
        groups = dense.reshape(rows, k // m, m)
        order = np.argsort(-np.abs(groups), axis=2, kind="stable")[:, :, :n]
        order = np.sort(order, axis=2)
        values = np.take_along_axis(groups, order, axis=2)
        return cls(
            shape=(rows, k),
            values=values.reshape(rows, -1),
            positions=order.reshape(rows, -1),
            n=n,
            m=m,
        )

    def to_dense(self) -> np.ndarray:
        rows, k = self.shape
        out = np.zeros((rows, k), dtype=np.float64)
        values = self.values.reshape(rows, k // self.m, self.n)
        positions = self.positions.reshape(rows, k // self.m, self.n)
        for g in range(k // self.m):
            base = g * self.m
            np.put_along_axis(
                out[:, base : base + self.m], positions[:, g, :], values[:, g, :], axis=1
            )
        return out
