"""Loop-based oracle SpMM implementations (the seed reference kernels).

These are the original per-row / per-group Python-loop implementations that
:mod:`repro.sparse.spmm` shipped with before the engine was vectorized.  They
are deliberately kept verbatim:

* the property-based test-suite uses them as the *oracle* the vectorized
  kernels must match to ``1e-10``,
* ``benchmarks/bench_spmm_vectorized.py`` times them against the vectorized
  engine to document (and gate) the speedup.

Nothing in the hot paths should import from this module; it exists purely as
a correctness yardstick.
"""

from __future__ import annotations

import numpy as np

from .convert import vector_wise_to_block_lists
from .formats import (
    Balanced24Matrix,
    BlockSparseMatrix,
    CSRMatrix,
    ShflBWMatrix,
    VectorSparseMatrix,
)

__all__ = [
    "spmm_csr_loop",
    "spmm_block_loop",
    "spmm_vector_wise_loop",
    "spmm_shflbw_loop",
    "spmm_balanced_loop",
]


def _check_rhs(shape: tuple[int, int], rhs: np.ndarray) -> np.ndarray:
    rhs = np.asarray(rhs, dtype=np.float64)
    if rhs.ndim != 2:
        raise ValueError(f"expected a 2-D dense matrix, got shape {rhs.shape}")
    if rhs.shape[0] != shape[1]:
        raise ValueError(
            f"dimension mismatch: sparse K={shape[1]} vs dense rows={rhs.shape[0]}"
        )
    return rhs


def spmm_csr_loop(matrix: CSRMatrix, rhs: np.ndarray) -> np.ndarray:
    """Row-wise CSR SpMM (one gather + dot per row)."""
    rhs = _check_rhs(matrix.shape, rhs)
    m, _ = matrix.shape
    out = np.zeros((m, rhs.shape[1]), dtype=np.float64)
    for i in range(m):
        start, end = matrix.indptr[i], matrix.indptr[i + 1]
        if start == end:
            continue
        cols = matrix.indices[start:end]
        vals = matrix.data[start:end]
        out[i] = vals @ rhs[cols, :]
    return out


def spmm_block_loop(matrix: BlockSparseMatrix, rhs: np.ndarray) -> np.ndarray:
    """Block-wise SpMM: one dense ``V x V`` GEMM per stored block."""
    rhs = _check_rhs(matrix.shape, rhs)
    m, _ = matrix.shape
    v = matrix.block_size
    out = np.zeros((m, rhs.shape[1]), dtype=np.float64)
    for bi in range(matrix.num_block_rows):
        start, end = matrix.block_indptr[bi], matrix.block_indptr[bi + 1]
        acc = np.zeros((v, rhs.shape[1]), dtype=np.float64)
        for pos in range(start, end):
            bj = matrix.block_indices[pos]
            acc += matrix.data[pos] @ rhs[bj * v : (bj + 1) * v, :]
        out[bi * v : (bi + 1) * v, :] = acc
    return out


def spmm_vector_wise_loop(matrix: VectorSparseMatrix, rhs: np.ndarray) -> np.ndarray:
    """Vector-wise SpMM: one dense panel GEMM per row group."""
    rhs = _check_rhs(matrix.shape, rhs)
    m, _ = matrix.shape
    v = matrix.vector_size
    out = np.zeros((m, rhs.shape[1]), dtype=np.float64)
    for g in range(matrix.num_groups):
        cols = matrix.group_columns[g]
        if len(cols) == 0:
            continue
        gathered = rhs[cols, :]
        out[g * v : (g + 1) * v, :] = matrix.group_values[g] @ gathered
    return out


def spmm_shflbw_loop(
    matrix: ShflBWMatrix, rhs: np.ndarray, *, tile_cols: int | None = None
) -> np.ndarray:
    """Shfl-BW SpMM following the GPU kernel structure panel-by-panel."""
    rhs = _check_rhs(matrix.shape, rhs)
    n = rhs.shape[1]
    m = matrix.shape[0]
    v = matrix.vector_size
    out = np.zeros((m, n), dtype=np.float64)

    panels_per_group = vector_wise_to_block_lists(
        matrix.vector_matrix, tile_cols=tile_cols
    )
    for g, panels in enumerate(panels_per_group):
        acc = np.zeros((v, n), dtype=np.float64)
        for panel in panels:
            cols = panel["columns"]
            values = panel["values"]
            valid = cols >= 0
            # In-buffer stitching: gather the activation rows named by the
            # column indices; padded lanes contribute zero.
            stitched = np.zeros((len(cols), n), dtype=np.float64)
            stitched[valid, :] = rhs[cols[valid], :]
            acc += values @ stitched
        original_rows = matrix.row_indices[g * v : (g + 1) * v]
        # Reordered write-back: results land directly in the original rows.
        out[original_rows, :] = acc
    return out


def spmm_balanced_loop(matrix: Balanced24Matrix, rhs: np.ndarray) -> np.ndarray:
    """Balanced n:m SpMM: select operands by position metadata, row by row."""
    rhs = _check_rhs(matrix.shape, rhs)
    rows, k = matrix.shape
    n_out = rhs.shape[1]
    out = np.zeros((rows, n_out), dtype=np.float64)
    values = matrix.values.reshape(rows, k // matrix.m, matrix.n)
    positions = matrix.positions.reshape(rows, k // matrix.m, matrix.n)
    group_base = (np.arange(k // matrix.m) * matrix.m)[None, :, None]
    cols = positions + group_base  # absolute column index per kept value
    for i in range(rows):
        flat_cols = cols[i].reshape(-1)
        flat_vals = values[i].reshape(-1)
        out[i] = flat_vals @ rhs[flat_cols, :]
    return out
