"""Loop-based oracle implementations (the seed reference code paths).

These are the original per-row / per-group / per-block Python-loop
implementations that :mod:`repro.sparse.spmm`, the format conversions in
:mod:`repro.sparse.formats` and the im2col machinery in
:mod:`repro.sparse.spconv` shipped with before the engine was vectorized.
They are deliberately kept verbatim:

* the property-based test-suite uses them as the *oracle* the vectorized
  code must match (SpMM to ``1e-10``; conversions and im2col exactly),
* the benchmarks in ``benchmarks/`` time them against the vectorized
  engine to document (and gate) the speedups.

Nothing in the hot paths should import from this module; it exists purely as
a correctness yardstick.
"""

from __future__ import annotations

import numpy as np

from .convert import vector_wise_to_block_lists
from .formats import (
    Balanced24Matrix,
    BlockSparseMatrix,
    CSRMatrix,
    ShflBWMatrix,
    VectorSparseMatrix,
)
from .spconv import Conv2dSpec

__all__ = [
    "spmm_csr_loop",
    "spmm_block_loop",
    "spmm_vector_wise_loop",
    "spmm_shflbw_loop",
    "spmm_balanced_loop",
    "csr_from_dense_loop",
    "csr_to_dense_loop",
    "block_from_dense_loop",
    "block_to_dense_loop",
    "im2col_loop",
    "col2im_loop",
]


def _check_rhs(shape: tuple[int, int], rhs: np.ndarray) -> np.ndarray:
    rhs = np.asarray(rhs, dtype=np.float64)
    if rhs.ndim != 2:
        raise ValueError(f"expected a 2-D dense matrix, got shape {rhs.shape}")
    if rhs.shape[0] != shape[1]:
        raise ValueError(
            f"dimension mismatch: sparse K={shape[1]} vs dense rows={rhs.shape[0]}"
        )
    return rhs


def spmm_csr_loop(matrix: CSRMatrix, rhs: np.ndarray) -> np.ndarray:
    """Row-wise CSR SpMM (one gather + dot per row)."""
    rhs = _check_rhs(matrix.shape, rhs)
    m, _ = matrix.shape
    out = np.zeros((m, rhs.shape[1]), dtype=np.float64)
    for i in range(m):
        start, end = matrix.indptr[i], matrix.indptr[i + 1]
        if start == end:
            continue
        cols = matrix.indices[start:end]
        vals = matrix.data[start:end]
        out[i] = vals @ rhs[cols, :]
    return out


def spmm_block_loop(matrix: BlockSparseMatrix, rhs: np.ndarray) -> np.ndarray:
    """Block-wise SpMM: one dense ``V x V`` GEMM per stored block."""
    rhs = _check_rhs(matrix.shape, rhs)
    m, _ = matrix.shape
    v = matrix.block_size
    out = np.zeros((m, rhs.shape[1]), dtype=np.float64)
    for bi in range(matrix.num_block_rows):
        start, end = matrix.block_indptr[bi], matrix.block_indptr[bi + 1]
        acc = np.zeros((v, rhs.shape[1]), dtype=np.float64)
        for pos in range(start, end):
            bj = matrix.block_indices[pos]
            acc += matrix.data[pos] @ rhs[bj * v : (bj + 1) * v, :]
        out[bi * v : (bi + 1) * v, :] = acc
    return out


def spmm_vector_wise_loop(matrix: VectorSparseMatrix, rhs: np.ndarray) -> np.ndarray:
    """Vector-wise SpMM: one dense panel GEMM per row group."""
    rhs = _check_rhs(matrix.shape, rhs)
    m, _ = matrix.shape
    v = matrix.vector_size
    out = np.zeros((m, rhs.shape[1]), dtype=np.float64)
    for g in range(matrix.num_groups):
        cols = matrix.group_columns[g]
        if len(cols) == 0:
            continue
        gathered = rhs[cols, :]
        out[g * v : (g + 1) * v, :] = matrix.group_values[g] @ gathered
    return out


def spmm_shflbw_loop(
    matrix: ShflBWMatrix, rhs: np.ndarray, *, tile_cols: int | None = None
) -> np.ndarray:
    """Shfl-BW SpMM following the GPU kernel structure panel-by-panel."""
    rhs = _check_rhs(matrix.shape, rhs)
    n = rhs.shape[1]
    m = matrix.shape[0]
    v = matrix.vector_size
    out = np.zeros((m, n), dtype=np.float64)

    panels_per_group = vector_wise_to_block_lists(
        matrix.vector_matrix, tile_cols=tile_cols
    )
    for g, panels in enumerate(panels_per_group):
        acc = np.zeros((v, n), dtype=np.float64)
        for panel in panels:
            cols = panel["columns"]
            values = panel["values"]
            valid = cols >= 0
            # In-buffer stitching: gather the activation rows named by the
            # column indices; padded lanes contribute zero.
            stitched = np.zeros((len(cols), n), dtype=np.float64)
            stitched[valid, :] = rhs[cols[valid], :]
            acc += values @ stitched
        original_rows = matrix.row_indices[g * v : (g + 1) * v]
        # Reordered write-back: results land directly in the original rows.
        out[original_rows, :] = acc
    return out


def spmm_balanced_loop(matrix: Balanced24Matrix, rhs: np.ndarray) -> np.ndarray:
    """Balanced n:m SpMM: select operands by position metadata, row by row."""
    rhs = _check_rhs(matrix.shape, rhs)
    rows, k = matrix.shape
    n_out = rhs.shape[1]
    out = np.zeros((rows, n_out), dtype=np.float64)
    values = matrix.values.reshape(rows, k // matrix.m, matrix.n)
    positions = matrix.positions.reshape(rows, k // matrix.m, matrix.n)
    group_base = (np.arange(k // matrix.m) * matrix.m)[None, :, None]
    cols = positions + group_base  # absolute column index per kept value
    for i in range(rows):
        flat_cols = cols[i].reshape(-1)
        flat_vals = values[i].reshape(-1)
        out[i] = flat_vals @ rhs[flat_cols, :]
    return out


# --------------------------------------------------------------------------- #
# Format-conversion oracles (the seed from_dense / to_dense loops)
# --------------------------------------------------------------------------- #
def _as_2d_float(dense: np.ndarray) -> np.ndarray:
    arr = np.asarray(dense, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
    return arr


def csr_from_dense_loop(dense: np.ndarray) -> CSRMatrix:
    """Per-row CSR compression (the seed ``CSRMatrix.from_dense``)."""
    dense = _as_2d_float(dense)
    m, k = dense.shape
    indptr = np.zeros(m + 1, dtype=np.int64)
    indices: list[np.ndarray] = []
    data: list[np.ndarray] = []
    for i in range(m):
        cols = np.nonzero(dense[i])[0]
        indices.append(cols)
        data.append(dense[i, cols])
        indptr[i + 1] = indptr[i] + len(cols)
    return CSRMatrix(
        shape=(m, k),
        data=np.concatenate(data) if data else np.zeros(0),
        indices=np.concatenate(indices) if indices else np.zeros(0, dtype=np.int64),
        indptr=indptr,
    )


def csr_to_dense_loop(matrix: CSRMatrix) -> np.ndarray:
    """Per-row CSR reconstruction (the seed ``CSRMatrix.to_dense``)."""
    m, k = matrix.shape
    out = np.zeros((m, k), dtype=np.float64)
    for i in range(m):
        start, end = matrix.indptr[i], matrix.indptr[i + 1]
        out[i, matrix.indices[start:end]] = matrix.data[start:end]
    return out


def block_from_dense_loop(dense: np.ndarray, block_size: int) -> BlockSparseMatrix:
    """Per-block BSR compression (the seed ``BlockSparseMatrix.from_dense``)."""
    dense = _as_2d_float(dense)
    m, k = dense.shape
    v = block_size
    if m % v or k % v:
        raise ValueError(f"shape {dense.shape} is not divisible by V={v}")
    blocks: list[np.ndarray] = []
    indices: list[int] = []
    indptr = np.zeros(m // v + 1, dtype=np.int64)
    for bi in range(m // v):
        count = 0
        for bj in range(k // v):
            block = dense[bi * v : (bi + 1) * v, bj * v : (bj + 1) * v]
            if np.any(block != 0.0):
                blocks.append(block.copy())
                indices.append(bj)
                count += 1
        indptr[bi + 1] = indptr[bi] + count
    data = np.stack(blocks) if blocks else np.zeros((0, v, v))
    return BlockSparseMatrix(
        shape=(m, k),
        block_size=v,
        data=data,
        block_indices=np.asarray(indices, dtype=np.int64),
        block_indptr=indptr,
    )


def block_to_dense_loop(matrix: BlockSparseMatrix) -> np.ndarray:
    """Per-block BSR reconstruction (the seed ``BlockSparseMatrix.to_dense``)."""
    m, k = matrix.shape
    v = matrix.block_size
    out = np.zeros((m, k), dtype=np.float64)
    for bi in range(matrix.num_block_rows):
        start, end = matrix.block_indptr[bi], matrix.block_indptr[bi + 1]
        for pos in range(start, end):
            bj = matrix.block_indices[pos]
            out[bi * v : (bi + 1) * v, bj * v : (bj + 1) * v] = matrix.data[pos]
    return out


# --------------------------------------------------------------------------- #
# im2col / col2im oracles (the seed channel x kernel-position loops)
# --------------------------------------------------------------------------- #
def im2col_loop(inputs: np.ndarray, spec: Conv2dSpec) -> np.ndarray:
    """Per-(channel, kernel-position) unfolding (the seed ``im2col``)."""
    inputs = np.asarray(inputs, dtype=np.float64)
    if inputs.ndim != 4:
        raise ValueError(f"expected NCHW input, got shape {inputs.shape}")
    n, c, h, w = inputs.shape
    if c != spec.in_channels:
        raise ValueError(f"input has {c} channels, spec expects {spec.in_channels}")
    kh = spec.kernel_size
    oh, ow = spec.output_hw(h, w)

    padded = np.pad(
        inputs,
        ((0, 0), (0, 0), (spec.padding, spec.padding), (spec.padding, spec.padding)),
    )
    cols = np.zeros((c * kh * kh, n * oh * ow), dtype=np.float64)
    idx = 0
    for ci in range(c):
        for ki in range(kh):
            for kj in range(kh):
                patch = padded[
                    :,
                    ci,
                    ki : ki + spec.stride * oh : spec.stride,
                    kj : kj + spec.stride * ow : spec.stride,
                ]
                cols[idx, :] = patch.reshape(n * oh * ow)
                idx += 1
    return cols


def col2im_loop(
    cols: np.ndarray, input_shape: tuple[int, int, int, int], spec: Conv2dSpec
) -> np.ndarray:
    """Per-(channel, kernel-position) scatter-add (the seed ``col2im``)."""
    cols = np.asarray(cols, dtype=np.float64)
    n, c, h, w = input_shape
    kh = spec.kernel_size
    oh, ow = spec.output_hw(h, w)
    if cols.shape != (c * kh * kh, n * oh * ow):
        raise ValueError(
            f"cols shape {cols.shape} does not match ({c * kh * kh}, {n * oh * ow})"
        )
    padded = np.zeros(
        (n, c, h + 2 * spec.padding, w + 2 * spec.padding), dtype=np.float64
    )
    idx = 0
    for ci in range(c):
        for ki in range(kh):
            for kj in range(kh):
                patch = cols[idx, :].reshape(n, oh, ow)
                padded[
                    :,
                    ci,
                    ki : ki + spec.stride * oh : spec.stride,
                    kj : kj + spec.stride * ow : spec.stride,
                ] += patch
                idx += 1
    if spec.padding:
        return padded[:, :, spec.padding : spec.padding + h, spec.padding : spec.padding + w]
    return padded
