"""Conversions between dense matrices and the sparse formats.

Two conversions correspond directly to steps of the paper's kernel pipeline
(Figure 4):

* :func:`shflbw_to_vector_wise` — the offline processing of step (a): store
  the permuted matrix contiguously in vector-wise form and remember the
  original row indices,
* :func:`vector_wise_to_block` — the column-stitching view of step (b): pack
  the kept columns of each ``V``-row group into dense ``V x tile`` panels
  (padding the last panel), which is exactly the shape handed to the
  tensor-core MMA loop.
"""

from __future__ import annotations

import numpy as np

from .formats import (
    Balanced24Matrix,
    BlockSparseMatrix,
    CSRMatrix,
    ShflBWMatrix,
    VectorSparseMatrix,
)

__all__ = [
    "dense_to_csr",
    "dense_to_block",
    "dense_to_vector_wise",
    "dense_to_shflbw",
    "dense_to_balanced",
    "shflbw_to_vector_wise",
    "vector_wise_to_block",
    "identity_row_indices",
]


def identity_row_indices(m: int) -> np.ndarray:
    """Row permutation that leaves the matrix untouched."""
    return np.arange(m, dtype=np.int64)


def dense_to_csr(dense: np.ndarray) -> CSRMatrix:
    """Compress an (already pruned) dense matrix into CSR."""
    return CSRMatrix.from_dense(dense)


def dense_to_block(dense: np.ndarray, block_size: int) -> BlockSparseMatrix:
    """Compress an (already pruned) dense matrix into ``V x V`` BSR."""
    return BlockSparseMatrix.from_dense(dense, block_size)


def dense_to_vector_wise(dense: np.ndarray, vector_size: int) -> VectorSparseMatrix:
    """Compress an (already pruned) dense matrix into vector-wise form."""
    return VectorSparseMatrix.from_dense(dense, vector_size)


def dense_to_shflbw(
    dense: np.ndarray, vector_size: int, row_indices: np.ndarray | None = None
) -> ShflBWMatrix:
    """Compress a dense matrix into Shfl-BW form.

    Parameters
    ----------
    dense:
        The pruned dense weight matrix (original row order).
    vector_size:
        Row-group height ``V``.
    row_indices:
        The row permutation discovered by the pattern search; identity if
        omitted (in which case Shfl-BW degenerates to vector-wise sparsity).
    """
    dense = np.asarray(dense, dtype=np.float64)
    if row_indices is None:
        row_indices = identity_row_indices(dense.shape[0])
    return ShflBWMatrix.from_dense(dense, vector_size, row_indices)


def dense_to_balanced(dense: np.ndarray, n: int = 2, m: int = 4) -> Balanced24Matrix:
    """Project a dense matrix onto the balanced ``n:m`` pattern."""
    return Balanced24Matrix.from_dense(dense, n=n, m=m)


def shflbw_to_vector_wise(matrix: ShflBWMatrix) -> tuple[VectorSparseMatrix, np.ndarray]:
    """Offline step (a) of Figure 4: return the permuted vector-wise matrix
    and the row-index array used by the reordered write-back."""
    return matrix.vector_matrix, matrix.row_indices.copy()


def vector_wise_to_block(
    matrix: VectorSparseMatrix, tile_cols: int | None = None
) -> list[list[dict]]:
    """Column-stitch each row group of a vector-wise matrix into dense panels.

    Parameters
    ----------
    matrix:
        The vector-wise matrix.
    tile_cols:
        Number of stitched columns per panel (the kernel's ``T_K``); defaults
        to the vector size, which yields square ``V x V`` blocks as in
        Figure 3(d).

    Returns
    -------
    list of list of dict
        ``panels[g]`` is the list of panels of group ``g``; each panel is a
        dict with keys ``"values"`` (a dense ``(V, tile_cols)`` array, zero
        padded) and ``"columns"`` (the source column index of each stitched
        column, ``-1`` for padding).
    """
    v = matrix.vector_size
    tile = tile_cols if tile_cols is not None else v
    if tile <= 0:
        raise ValueError("tile_cols must be positive")

    all_panels: list[list[dict]] = []
    for g in range(matrix.num_groups):
        cols = matrix.group_columns[g]
        vals = matrix.group_values[g]
        panels: list[dict] = []
        for start in range(0, len(cols), tile):
            chunk_cols = cols[start : start + tile]
            chunk_vals = vals[:, start : start + tile]
            padded_vals = np.zeros((v, tile), dtype=np.float64)
            padded_cols = np.full(tile, -1, dtype=np.int64)
            padded_vals[:, : chunk_vals.shape[1]] = chunk_vals
            padded_cols[: len(chunk_cols)] = chunk_cols
            panels.append({"values": padded_vals, "columns": padded_cols})
        all_panels.append(panels)
    return all_panels
