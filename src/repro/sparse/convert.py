"""Conversions between dense matrices and the sparse formats.

Two conversions correspond directly to steps of the paper's kernel pipeline
(Figure 4):

* :func:`shflbw_to_vector_wise` — the offline processing of step (a): store
  the permuted matrix contiguously in vector-wise form and remember the
  original row indices,
* :func:`vector_wise_to_block` — the column-stitching view of step (b): pack
  the kept columns of each ``V``-row group into dense ``V x tile`` panels
  (padding the last panel), which is exactly the shape handed to the
  tensor-core MMA loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .formats import (
    Balanced24Matrix,
    BlockSparseMatrix,
    CSRMatrix,
    ShflBWMatrix,
    VectorSparseMatrix,
)

__all__ = [
    "dense_to_csr",
    "dense_to_block",
    "dense_to_vector_wise",
    "dense_to_shflbw",
    "dense_to_balanced",
    "shflbw_to_vector_wise",
    "StitchedPanels",
    "vector_wise_to_block",
    "vector_wise_to_block_lists",
    "stitched_panels",
    "identity_row_indices",
]


def identity_row_indices(m: int) -> np.ndarray:
    """Row permutation that leaves the matrix untouched."""
    return np.arange(m, dtype=np.int64)


def dense_to_csr(dense: np.ndarray) -> CSRMatrix:
    """Compress an (already pruned) dense matrix into CSR."""
    return CSRMatrix.from_dense(dense)


def dense_to_block(dense: np.ndarray, block_size: int) -> BlockSparseMatrix:
    """Compress an (already pruned) dense matrix into ``V x V`` BSR."""
    return BlockSparseMatrix.from_dense(dense, block_size)


def dense_to_vector_wise(dense: np.ndarray, vector_size: int) -> VectorSparseMatrix:
    """Compress an (already pruned) dense matrix into vector-wise form."""
    return VectorSparseMatrix.from_dense(dense, vector_size)


def dense_to_shflbw(
    dense: np.ndarray, vector_size: int, row_indices: np.ndarray | None = None
) -> ShflBWMatrix:
    """Compress a dense matrix into Shfl-BW form.

    Parameters
    ----------
    dense:
        The pruned dense weight matrix (original row order).
    vector_size:
        Row-group height ``V``.
    row_indices:
        The row permutation discovered by the pattern search; identity if
        omitted (in which case Shfl-BW degenerates to vector-wise sparsity).
    """
    dense = np.asarray(dense, dtype=np.float64)
    if row_indices is None:
        row_indices = identity_row_indices(dense.shape[0])
    return ShflBWMatrix.from_dense(dense, vector_size, row_indices)


def dense_to_balanced(dense: np.ndarray, n: int = 2, m: int = 4) -> Balanced24Matrix:
    """Project a dense matrix onto the balanced ``n:m`` pattern."""
    return Balanced24Matrix.from_dense(dense, n=n, m=m)


def shflbw_to_vector_wise(matrix: ShflBWMatrix) -> tuple[VectorSparseMatrix, np.ndarray]:
    """Offline step (a) of Figure 4: return the permuted vector-wise matrix
    and the row-index array used by the reordered write-back."""
    return matrix.vector_matrix, matrix.row_indices.copy()


@dataclass
class StitchedPanels:
    """Stacked column-stitched panels of a vector-wise matrix.

    All panels of all row groups are stored in three flat arrays so the SpMM
    engine can consume them with batched gathers and ``matmul`` calls instead
    of Python loops:

    Attributes
    ----------
    vector_size:
        Row-group height ``V``.
    tile_cols:
        Stitched columns per panel (the kernel's ``T_K``).
    num_groups:
        Number of ``V``-row groups of the source matrix.
    values:
        ``(num_panels, V, tile_cols)`` dense panel values, zero padded.
    columns:
        ``(num_panels, tile_cols)`` source column index of each stitched
        column, ``-1`` for padding.
    group_indptr:
        ``(num_groups + 1,)`` pointer array; the panels of group ``g`` are
        ``values[group_indptr[g]:group_indptr[g + 1]]`` (groups with no kept
        column own zero panels).
    """

    vector_size: int
    tile_cols: int
    num_groups: int
    values: np.ndarray
    columns: np.ndarray
    group_indptr: np.ndarray
    _gather_columns: np.ndarray | None = field(default=None, repr=False)

    @property
    def num_panels(self) -> int:
        return int(self.values.shape[0])

    @property
    def gather_columns(self) -> np.ndarray:
        """``columns`` with padding lanes clamped to a valid index.

        Padded lanes carry zero weight values, so gathering an arbitrary
        (valid) activation row for them contributes nothing; clamping lets
        the SpMM skip per-lane masking entirely.
        """
        if self._gather_columns is None:
            self._gather_columns = np.maximum(self.columns, 0)
        return self._gather_columns

    def group_panels(self, g: int) -> tuple[np.ndarray, np.ndarray]:
        """Values and columns of the panels of group ``g`` (views)."""
        start, end = self.group_indptr[g], self.group_indptr[g + 1]
        return self.values[start:end], self.columns[start:end]

    def to_group_lists(self) -> list[list[dict]]:
        """Legacy view: one list of ``{"values", "columns"}`` dicts per group."""
        out: list[list[dict]] = []
        for g in range(self.num_groups):
            vals, cols = self.group_panels(g)
            out.append(
                [
                    {"values": vals[p].copy(), "columns": cols[p].copy()}
                    for p in range(vals.shape[0])
                ]
            )
        return out


def vector_wise_to_block(
    matrix: VectorSparseMatrix, tile_cols: int | None = None
) -> StitchedPanels:
    """Column-stitch each row group of a vector-wise matrix into dense panels.

    Parameters
    ----------
    matrix:
        The vector-wise matrix.
    tile_cols:
        Number of stitched columns per panel (the kernel's ``T_K``); defaults
        to the vector size, which yields square ``V x V`` blocks as in
        Figure 3(d).

    Returns
    -------
    StitchedPanels
        All panels stacked into ``(num_panels, V, tile_cols)`` /
        ``(num_panels, tile_cols)`` arrays plus a per-group pointer array.
        Use :meth:`StitchedPanels.to_group_lists` (or
        :func:`vector_wise_to_block_lists`) for the legacy list-of-dicts
        layout.
    """
    v = matrix.vector_size
    tile = tile_cols if tile_cols is not None else v
    if tile <= 0:
        raise ValueError("tile_cols must be positive")

    num_groups = matrix.num_groups
    widths = np.fromiter(
        (len(c) for c in matrix.group_columns), dtype=np.int64, count=num_groups
    )
    panels_per_group = -(-widths // tile)  # ceil(width / tile), 0 for empty
    group_indptr = np.zeros(num_groups + 1, dtype=np.int64)
    np.cumsum(panels_per_group, out=group_indptr[1:])
    num_panels = int(group_indptr[-1])

    values = np.zeros((num_panels, v, tile), dtype=np.float64)
    columns = np.full((num_panels, tile), -1, dtype=np.int64)
    total = int(widths.sum())
    if total:
        all_cols = np.concatenate(matrix.group_columns)
        all_vals = np.concatenate(matrix.group_values, axis=1)  # (V, total)
        # Intra-group position of every kept column, then its panel and lane.
        group_starts = np.cumsum(widths) - widths
        intra = np.arange(total, dtype=np.int64) - np.repeat(group_starts, widths)
        panel = np.repeat(group_indptr[:-1], widths) + intra // tile
        lane = intra % tile
        columns[panel, lane] = all_cols
        values[panel, :, lane] = all_vals.T
    return StitchedPanels(
        vector_size=v,
        tile_cols=tile,
        num_groups=num_groups,
        values=values,
        columns=columns,
        group_indptr=group_indptr,
    )


def vector_wise_to_block_lists(
    matrix: VectorSparseMatrix, tile_cols: int | None = None
) -> list[list[dict]]:
    """Compatibility shim: the pre-vectorization list-of-dicts panel layout.

    ``panels[g]`` is the list of panels of group ``g``; each panel is a dict
    with keys ``"values"`` (a dense ``(V, tile_cols)`` array, zero padded) and
    ``"columns"`` (the source column index of each stitched column, ``-1``
    for padding).
    """
    return vector_wise_to_block(matrix, tile_cols=tile_cols).to_group_lists()


def stitched_panels(
    matrix: VectorSparseMatrix, tile_cols: int | None = None
) -> StitchedPanels:
    """Memoised :func:`vector_wise_to_block`.

    The stitched panels are a pure function of the (immutable-by-convention)
    matrix and the tile width, and building them is the expensive offline
    half of the vector-wise / Shfl-BW kernels — so they are cached on the
    matrix instance, keyed by ``tile_cols``.  Callers that mutate
    ``group_columns`` / ``group_values`` in place must drop the
    ``_panel_cache`` attribute (or rebuild the matrix).
    """
    tile = tile_cols if tile_cols is not None else matrix.vector_size
    cache: dict[int, StitchedPanels] = matrix.__dict__.setdefault("_panel_cache", {})
    panels = cache.get(tile)
    if panels is None:
        panels = vector_wise_to_block(matrix, tile_cols=tile)
        cache[tile] = panels
    return panels
