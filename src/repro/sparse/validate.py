"""Structural validators for sparse patterns.

Pruners promise to emit matrices that satisfy a given sparsity pattern; the
validators here check those promises directly on dense masks/matrices, so the
test-suite (and property-based tests in particular) can assert pattern
invariants without trusting the format containers.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_blockwise",
    "is_vector_wise",
    "is_shflbw",
    "is_balanced",
    "sparsity",
    "density",
]


def _mask_of(matrix: np.ndarray) -> np.ndarray:
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
    return arr != 0


def sparsity(matrix: np.ndarray) -> float:
    """Fraction of zero entries."""
    mask = _mask_of(matrix)
    return 1.0 - float(mask.mean()) if mask.size else 0.0


def density(matrix: np.ndarray) -> float:
    """Fraction of non-zero entries."""
    return 1.0 - sparsity(matrix)


def is_blockwise(matrix: np.ndarray, block_size: int) -> bool:
    """True if every ``V x V`` block is either fully zero or fully non-zero."""
    mask = _mask_of(matrix)
    m, k = mask.shape
    v = block_size
    if v <= 0 or m % v or k % v:
        return False
    blocks = mask.reshape(m // v, v, k // v, v).transpose(0, 2, 1, 3)
    any_nz = blocks.any(axis=(2, 3))
    all_nz = blocks.all(axis=(2, 3))
    return bool(np.all(any_nz == all_nz))


def is_vector_wise(matrix: np.ndarray, vector_size: int) -> bool:
    """True if within every group of ``V`` *consecutive* rows each column is
    either fully kept or fully pruned."""
    mask = _mask_of(matrix)
    m, _ = mask.shape
    v = vector_size
    if v <= 0 or m % v:
        return False
    groups = mask.reshape(m // v, v, -1)
    any_nz = groups.any(axis=1)
    all_nz = groups.all(axis=1)
    return bool(np.all(any_nz == all_nz))


def is_shflbw(
    matrix: np.ndarray, vector_size: int, row_indices: np.ndarray | None = None
) -> bool:
    """True if some row permutation turns the matrix vector-wise.

    If ``row_indices`` is provided it is checked directly (this is the cheap
    path used when the pruner exposes its search result).  Otherwise the rows
    are grouped by their non-zero column support; the matrix is Shfl-BW iff
    rows can be partitioned into groups of exactly ``V`` identical supports —
    which we verify greedily by counting rows per distinct support pattern.
    """
    mask = _mask_of(matrix)
    m, _ = mask.shape
    v = vector_size
    if v <= 0 or m % v:
        return False

    if row_indices is not None:
        row_indices = np.asarray(row_indices, dtype=np.int64)
        if sorted(row_indices.tolist()) != list(range(m)):
            return False
        return is_vector_wise(mask[row_indices, :], v)

    # Group rows by identical support; each support's multiplicity must be a
    # multiple of V so the rows can be packed into full groups.
    patterns: dict[bytes, int] = {}
    for i in range(m):
        key = mask[i].tobytes()
        patterns[key] = patterns.get(key, 0) + 1
    return all(count % v == 0 for count in patterns.values())


def is_balanced(matrix: np.ndarray, n: int = 2, m: int = 4) -> bool:
    """True if every group of ``m`` consecutive values per row has at most
    ``n`` non-zeros (the balanced n:m constraint)."""
    mask = _mask_of(matrix)
    rows, k = mask.shape
    if m <= 0 or k % m:
        return False
    groups = mask.reshape(rows, k // m, m)
    return bool(np.all(groups.sum(axis=2) <= n))
