"""Implicit-GEMM 2-D convolution references (dense and weight-sparse).

The paper implements sparse convolutions with the implicit-GEMM algorithm
(Section 4.1): the input feature map is unfolded (im2col) into a matrix on the
fly, so the convolution becomes an SpMM between the pruned weight matrix of
shape ``(C_out, C_in * KH * KW)`` and the unfolded activations of shape
``(C_in * KH * KW, N * OH * OW)``.  The functions here provide:

* :func:`im2col` / :func:`col2im_shape` — the unfolding used by every variant,
* :func:`conv2d_dense` — the cuDNN stand-in,
* :func:`conv2d_sparse` — convolution with any sparse weight format from
  :mod:`repro.sparse.formats`, dispatched through the reference SpMM kernels.

Activations use NCHW layout.  The paper's discussion of making batch the
innermost dimension only affects the memory model, not the mathematics, so
the functional reference keeps the conventional layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .spmm import spmm

__all__ = [
    "Conv2dSpec",
    "im2col",
    "col2im",
    "conv2d_dense",
    "conv2d_sparse",
    "weight_to_gemm",
]


@dataclass(frozen=True)
class Conv2dSpec:
    """Shape and hyper-parameters of one 2-D convolution layer.

    Attributes
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Square kernel edge (KH == KW).
    stride, padding:
        Standard convolution hyper-parameters.
    """

    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        if min(self.in_channels, self.out_channels, self.kernel_size) <= 0:
            raise ValueError("channels and kernel_size must be positive")
        if self.stride <= 0 or self.padding < 0:
            raise ValueError("stride must be positive and padding non-negative")

    @property
    def gemm_k(self) -> int:
        """Reduction length of the implicit GEMM."""
        return self.in_channels * self.kernel_size * self.kernel_size

    @property
    def gemm_m(self) -> int:
        """Output-row count of the implicit GEMM (the sparse dimension)."""
        return self.out_channels

    def output_hw(self, h: int, w: int) -> tuple[int, int]:
        """Spatial output size for an ``h x w`` input."""
        kh = self.kernel_size
        oh = (h + 2 * self.padding - kh) // self.stride + 1
        ow = (w + 2 * self.padding - kh) // self.stride + 1
        if oh <= 0 or ow <= 0:
            raise ValueError("convolution produces an empty output")
        return oh, ow


def _unfold_indices(
    spec: Conv2dSpec, oh: int, ow: int
) -> tuple[np.ndarray, np.ndarray]:
    """Padded-input row / column gather indices of the unfolding.

    Broadcasting the two returned arrays yields shape
    ``(KH, KW, OH, OW)``: entry ``(ki, kj, oi, oj)`` is the padded-input
    pixel that kernel position ``(ki, kj)`` reads for output ``(oi, oj)``.
    """
    taps = np.arange(spec.kernel_size)
    rows = (taps[:, None] + spec.stride * np.arange(oh)[None, :])[:, None, :, None]
    cols = (taps[:, None] + spec.stride * np.arange(ow)[None, :])[None, :, None, :]
    return rows, cols


def im2col(inputs: np.ndarray, spec: Conv2dSpec) -> np.ndarray:
    """Unfold an NCHW input into the implicit-GEMM activation matrix.

    Returns an array of shape ``(C_in * KH * KW, N * OH * OW)``.  One fancy-
    indexed gather replaces the seed's channel x kernel-position loop nest
    (kept as :func:`repro.sparse.spmm_reference.im2col_loop`, the oracle the
    property suite checks exact equality against).
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    if inputs.ndim != 4:
        raise ValueError(f"expected NCHW input, got shape {inputs.shape}")
    n, c, h, w = inputs.shape
    if c != spec.in_channels:
        raise ValueError(f"input has {c} channels, spec expects {spec.in_channels}")
    kh = spec.kernel_size
    oh, ow = spec.output_hw(h, w)

    padded = np.pad(
        inputs,
        ((0, 0), (0, 0), (spec.padding, spec.padding), (spec.padding, spec.padding)),
    )
    rows, cols = _unfold_indices(spec, oh, ow)
    # (n, c, kh, kh, oh, ow): every kernel tap of every output position.
    patches = padded[:, :, rows, cols]
    return patches.transpose(1, 2, 3, 0, 4, 5).reshape(c * kh * kh, n * oh * ow)


def col2im(
    cols: np.ndarray, input_shape: tuple[int, int, int, int], spec: Conv2dSpec
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add unfolded columns back to NCHW.

    Used by the convolution backward pass of the training substrate
    (:mod:`repro.nn`): the gradient with respect to the input is the col2im of
    ``W^T @ grad_output``.
    """
    cols = np.asarray(cols, dtype=np.float64)
    n, c, h, w = input_shape
    kh = spec.kernel_size
    oh, ow = spec.output_hw(h, w)
    if cols.shape != (c * kh * kh, n * oh * ow):
        raise ValueError(
            f"cols shape {cols.shape} does not match ({c * kh * kh}, {n * oh * ow})"
        )
    padded = np.zeros(
        (n, c, h + 2 * spec.padding, w + 2 * spec.padding), dtype=np.float64
    )
    # One unbuffered scatter-add replaces the seed's channel x kernel-position
    # loop nest (kept as repro.sparse.spmm_reference.col2im_loop).  np.add.at
    # accumulates duplicate targets in C iteration order — (ki, kj) ascending
    # per output pixel, the same order the loops added them in, so the result
    # is bit-identical.
    rows, cols_ix = _unfold_indices(spec, oh, ow)
    values = cols.reshape(c, kh, kh, n, oh, ow).transpose(3, 0, 1, 2, 4, 5)
    np.add.at(
        padded,
        (
            np.arange(n)[:, None, None, None, None, None],
            np.arange(c)[None, :, None, None, None, None],
            rows[None, None],
            cols_ix[None, None],
        ),
        values,
    )
    if spec.padding:
        return padded[:, :, spec.padding : spec.padding + h, spec.padding : spec.padding + w]
    return padded


def weight_to_gemm(weight: np.ndarray) -> np.ndarray:
    """Reshape an ``(C_out, C_in, KH, KW)`` weight into the GEMM LHS."""
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 4:
        raise ValueError(f"expected OIHW weight, got shape {weight.shape}")
    return weight.reshape(weight.shape[0], -1)


def conv2d_dense(inputs: np.ndarray, weight: np.ndarray, spec: Conv2dSpec) -> np.ndarray:
    """Dense implicit-GEMM convolution (the cuDNN stand-in)."""
    cols = im2col(inputs, spec)
    gemm_weight = weight_to_gemm(weight)
    if gemm_weight.shape != (spec.gemm_m, spec.gemm_k):
        raise ValueError(
            f"weight GEMM shape {gemm_weight.shape} does not match spec "
            f"({spec.gemm_m}, {spec.gemm_k})"
        )
    out = gemm_weight @ cols
    return _fold_output(out, inputs.shape, spec)


def conv2d_sparse(inputs: np.ndarray, sparse_weight, spec: Conv2dSpec) -> np.ndarray:
    """Weight-sparse implicit-GEMM convolution.

    ``sparse_weight`` is any format from :mod:`repro.sparse.formats` whose
    dense shape equals ``(C_out, C_in * KH * KW)``.
    """
    if sparse_weight.shape != (spec.gemm_m, spec.gemm_k):
        raise ValueError(
            f"sparse weight shape {sparse_weight.shape} does not match spec "
            f"({spec.gemm_m}, {spec.gemm_k})"
        )
    cols = im2col(inputs, spec)
    out = spmm(sparse_weight, cols)
    return _fold_output(out, inputs.shape, spec)


def _fold_output(
    gemm_out: np.ndarray, input_shape: tuple[int, ...], spec: Conv2dSpec
) -> np.ndarray:
    """Reshape the GEMM output ``(C_out, N * OH * OW)`` back to NCHW."""
    n, _, h, w = input_shape
    oh, ow = spec.output_hw(h, w)
    out = gemm_out.reshape(spec.out_channels, n, oh, ow)
    return np.transpose(out, (1, 0, 2, 3))
