"""Shfl-BW reproduction: tensor-core aware weight pruning (DAC 2022).

The package is organised as:

* :mod:`repro.core` — the Shfl-BW sparsity pattern, its transforms, the
  pattern-search (pruning) algorithm and the flexibility / efficiency
  analysis,
* :mod:`repro.sparse` — sparse storage formats and functional reference
  kernels (SpMM and implicit-GEMM convolution),
* :mod:`repro.gpu` — V100 / T4 / A100 architecture models and the analytical
  kernel-timing simulator that substitutes for real hardware,
* :mod:`repro.kernels` — the Shfl-BW GPU kernels and every baseline of the
  paper's evaluation (functional + timed),
* :mod:`repro.pruning` — pattern pruners and training-time workflows
  (magnitude, ADMM, grow-and-prune),
* :mod:`repro.nn` — a small numpy autograd engine, layers and trainers used
  for the accuracy experiments,
* :mod:`repro.models` — real Transformer / GNMT / ResNet50 layer shapes and
  small proxy models,
* :mod:`repro.eval` — the experiment harness that regenerates every table and
  figure of the paper.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
