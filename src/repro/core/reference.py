"""Loop-based oracle implementations of the pattern-search engine.

These are the original scalar-Python implementations that
:mod:`repro.core.kmeans`, :mod:`repro.core.pruning` and
:mod:`repro.core.transforms` shipped with before the Shfl-BW pattern search
was vectorized.  They are deliberately kept verbatim (mirroring
:mod:`repro.sparse.spmm_reference` for the SpMM engine):

* the property-based test-suite uses them as the *oracle* the vectorized
  engine must match bit-for-bit — identical masks, groups, permutations and
  assignments on every input,
* ``benchmarks/bench_pattern_search.py`` times them against the vectorized
  engine on a GNMT-scale search to document (and gate) the speedup.

Nothing in the hot paths should import from this module; it exists purely as
a correctness yardstick.
"""

from __future__ import annotations

import numpy as np

from .kmeans import kmeans_plusplus_init
from .pruning import ShflBWSearchResult, _check_scores, unstructured_mask
from .transforms import groups_to_permutation

__all__ = [
    "balanced_assignment_loop",
    "balanced_kmeans_loop",
    "vector_wise_mask_loop",
    "group_rows_by_support_loop",
    "search_shflbw_pattern_loop",
]


def balanced_assignment_loop(
    points: np.ndarray, centroids: np.ndarray, capacity: int
) -> np.ndarray:
    """Greedy capacity-constrained assignment, one sorted pair at a time.

    The seed implementation of ``kmeans._balanced_assignment``: walk the
    ``n * k`` distance pairs in ascending order in a Python loop, assigning
    each row to the first cluster with spare capacity.
    """
    n = points.shape[0]
    k = centroids.shape[0]
    # (n, k) squared distances.
    dists = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    order = np.argsort(dists, axis=None, kind="stable")
    assign = np.full(n, -1, dtype=np.int64)
    remaining = np.full(k, capacity, dtype=np.int64)
    assigned = 0
    for flat in order:
        row, cluster = divmod(int(flat), k)
        if assign[row] != -1 or remaining[cluster] == 0:
            continue
        assign[row] = cluster
        remaining[cluster] -= 1
        assigned += 1
        if assigned == n:
            break
    return assign


def balanced_kmeans_loop(
    points: np.ndarray,
    group_size: int,
    *,
    num_iters: int = 10,
    seed: int = 0,
) -> list[np.ndarray]:
    """The seed ``balanced_kmeans``: loop assignment + per-cluster mean loop."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    m = points.shape[0]
    if group_size <= 0 or m % group_size:
        raise ValueError(f"M={m} must be a positive multiple of group_size={group_size}")
    num_clusters = m // group_size
    if num_clusters == 1:
        return [np.arange(m, dtype=np.int64)]

    rng = np.random.default_rng(seed)
    centroids = kmeans_plusplus_init(points, num_clusters, rng)
    assign = balanced_assignment_loop(points, centroids, group_size)
    for _ in range(max(0, num_iters - 1)):
        for c in range(num_clusters):
            members = points[assign == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
        new_assign = balanced_assignment_loop(points, centroids, group_size)
        if np.array_equal(new_assign, assign):
            break
        assign = new_assign

    groups = [
        np.sort(np.nonzero(assign == c)[0]).astype(np.int64)
        for c in range(num_clusters)
    ]
    groups.sort(key=lambda g: int(g[0]))
    return groups


def vector_wise_mask_loop(
    scores: np.ndarray, density: float, vector_size: int
) -> np.ndarray:
    """The seed ``vector_wise_mask``: one argsort per consecutive row group."""
    scores = _check_scores(scores)
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    m, k = scores.shape
    v = vector_size
    if v <= 0 or m % v:
        raise ValueError(f"M={m} must be a positive multiple of V={v}")
    keep_cols = max(1, int(round(density * k)))
    mask = np.zeros((m, k), dtype=bool)
    for g in range(m // v):
        group_scores = scores[g * v : (g + 1) * v, :].sum(axis=0)
        order = np.argsort(-group_scores, kind="stable")
        kept = order[:keep_cols]
        mask[g * v : (g + 1) * v, kept] = True
    return mask


def group_rows_by_support_loop(mask: np.ndarray, vector_size: int) -> list[np.ndarray]:
    """The seed ``group_rows_by_support``: per-row dict hashing of supports."""
    mask = np.asarray(mask) != 0
    m = mask.shape[0]
    v = vector_size
    if v <= 0 or m % v:
        raise ValueError(f"M={m} must be a positive multiple of V={v}")

    by_support: dict[bytes, list[int]] = {}
    for i in range(m):
        by_support.setdefault(mask[i].tobytes(), []).append(i)

    groups: list[np.ndarray] = []
    leftovers: list[int] = []
    for rows in by_support.values():
        full, rest = divmod(len(rows), v)
        for g in range(full):
            groups.append(np.asarray(rows[g * v : (g + 1) * v], dtype=np.int64))
        leftovers.extend(rows[len(rows) - rest :])
    leftovers.sort()
    for g in range(len(leftovers) // v):
        groups.append(np.asarray(leftovers[g * v : (g + 1) * v], dtype=np.int64))
    return groups


def search_shflbw_pattern_loop(
    scores: np.ndarray,
    density: float,
    vector_size: int,
    *,
    beta_factor: float = 2.0,
    kmeans_iters: int = 10,
    seed: int = 0,
) -> ShflBWSearchResult:
    """The seed two-stage pattern search built from the loop oracles.

    Identical driver to :func:`repro.core.pruning.search_shflbw_pattern`,
    with the k-means clustering and the vector-wise pruning stage routed
    through the scalar reference implementations.
    """
    scores = _check_scores(scores)
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    if beta_factor <= 0:
        raise ValueError("beta_factor must be positive")
    m, _ = scores.shape
    if vector_size <= 0 or m % vector_size:
        raise ValueError(f"M={m} must be a positive multiple of V={vector_size}")

    beta = min(1.0, beta_factor * density)
    coarse_mask = unstructured_mask(scores, beta)
    groups = balanced_kmeans_loop(
        coarse_mask.astype(np.float64),
        vector_size,
        num_iters=kmeans_iters,
        seed=seed,
    )
    row_indices = groups_to_permutation(groups, m)

    permuted_scores = scores[row_indices, :]
    permuted_mask = vector_wise_mask_loop(permuted_scores, density, vector_size)
    mask = np.zeros_like(permuted_mask)
    mask[row_indices, :] = permuted_mask

    retained = float(scores[mask].sum())
    total = float(scores.sum())
    return ShflBWSearchResult(
        mask=mask,
        row_indices=row_indices,
        groups=tuple(tuple(int(i) for i in g) for g in groups),
        retained_score=retained,
        total_score=total,
    )
