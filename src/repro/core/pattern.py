"""Sparsity-pattern definitions.

The paper compares five weight-sparsity patterns (Figure 3 plus the balanced
pattern of Section 2.2).  :class:`PatternKind` enumerates them and
:class:`ShflBWPattern` captures the parameters of the paper's own pattern —
the vector (block) size ``V`` and the target density — together with the
validation rule that defines membership: *a matrix is Shfl-BW sparse iff some
row permutation groups its rows into groups of ``V`` rows with identical
column support.*
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..sparse.validate import is_shflbw, is_vector_wise

__all__ = ["PatternKind", "ShflBWPattern"]


class PatternKind(str, enum.Enum):
    """The weight-sparsity patterns discussed in the paper."""

    DENSE = "dense"
    UNSTRUCTURED = "unstructured"
    BLOCKWISE = "blockwise"
    VECTORWISE = "vectorwise"
    SHFLBW = "shflbw"
    BALANCED = "balanced"

    @property
    def uses_tensor_core(self) -> bool:
        """Whether kernels for this pattern can map onto tensor cores."""
        return self in (
            PatternKind.DENSE,
            PatternKind.BLOCKWISE,
            PatternKind.VECTORWISE,
            PatternKind.SHFLBW,
            PatternKind.BALANCED,
        )

    @property
    def needs_block_size(self) -> bool:
        """Whether the pattern is parameterised by a block / vector size V."""
        return self in (PatternKind.BLOCKWISE, PatternKind.VECTORWISE, PatternKind.SHFLBW)

    @classmethod
    def parse(cls, name: str) -> "PatternKind":
        """Parse a user-facing pattern name (tolerant of hyphens / case).

        Punctuation that commonly appears in pattern spellings is stripped,
        so ``"2:4"``, ``"2-in-4"`` and ``"Shfl-BW"`` all resolve.
        """
        key = (
            name.strip()
            .lower()
            .replace("-", "")
            .replace("_", "")
            .replace(" ", "")
            .replace(":", "")
        )
        aliases = {
            "dense": cls.DENSE,
            "unstructured": cls.UNSTRUCTURED,
            "random": cls.UNSTRUCTURED,
            "blockwise": cls.BLOCKWISE,
            "bw": cls.BLOCKWISE,
            "vectorwise": cls.VECTORWISE,
            "vw": cls.VECTORWISE,
            "shflbw": cls.SHFLBW,
            "shuffledblockwise": cls.SHFLBW,
            "balanced": cls.BALANCED,
            "2in4": cls.BALANCED,
            "24": cls.BALANCED,
        }
        if key not in aliases:
            raise ValueError(f"unknown sparsity pattern {name!r}")
        return aliases[key]


@dataclass(frozen=True)
class ShflBWPattern:
    """Parameters of a Shfl-BW sparsity structure.

    Attributes
    ----------
    vector_size:
        Row-group height / block edge ``V`` (the paper uses 32 and 64).
    density:
        Target non-zero ratio ``alpha`` (e.g. 0.25 for 75 % sparsity).
    """

    vector_size: int
    density: float

    def __post_init__(self) -> None:
        if self.vector_size <= 0:
            raise ValueError("vector_size must be positive")
        if not 0.0 < self.density <= 1.0:
            raise ValueError("density must be in (0, 1]")

    @property
    def sparsity(self) -> float:
        """Fraction of pruned weights."""
        return 1.0 - self.density

    def kept_columns_per_group(self, k: int) -> int:
        """Number of column vectors kept in each row group of a ``(M, k)``
        matrix at this density (at least one column is always kept)."""
        if k <= 0:
            raise ValueError("k must be positive")
        return max(1, int(round(self.density * k)))

    def validate_shape(self, m: int, k: int) -> None:
        """Raise ``ValueError`` if an ``(m, k)`` matrix cannot hold the pattern."""
        if m % self.vector_size:
            raise ValueError(
                f"M={m} must be divisible by the vector size V={self.vector_size}"
            )
        if k <= 0:
            raise ValueError("K must be positive")

    def matches(self, matrix: np.ndarray, row_indices: np.ndarray | None = None) -> bool:
        """Whether ``matrix`` satisfies the Shfl-BW structural constraint."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] % self.vector_size:
            return False
        return is_shflbw(matrix, self.vector_size, row_indices)

    def matches_permuted(self, permuted_matrix: np.ndarray) -> bool:
        """Whether an already-permuted matrix is vector-wise sparse."""
        return is_vector_wise(np.asarray(permuted_matrix), self.vector_size)

    def describe(self) -> str:
        """Human-readable label used in benchmark tables."""
        return f"Shfl-BW (V={self.vector_size}, {self.sparsity:.0%} sparsity)"
