"""The Shfl-BW pattern-search algorithm (Section 5, Figure 5).

Given an importance-score matrix, the algorithm decides which weights to keep
subject to the Shfl-BW structural constraint, in two stages:

**Row-group search** — apply unstructured pruning to the scores at a *reduced*
sparsity (non-zero ratio ``beta = beta_factor * alpha``, the paper finds
``beta = 2 alpha`` works best), producing a binary mask; cluster the mask rows
into groups of exactly ``V`` with balanced k-means, so rows that keep weights
in similar columns share a group.

**Pruning** — permute the rows so each group is contiguous, apply vector-wise
pruning at the target ratio ``alpha`` (each group keeps the columns with the
highest summed score), then reverse the permutation so the mask is expressed
in the original row order.

The output mask is guaranteed to satisfy the Shfl-BW pattern with the returned
``row_indices`` as its witness permutation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kmeans import balanced_kmeans
from .transforms import groups_to_permutation

__all__ = [
    "ShflBWSearchResult",
    "unstructured_mask",
    "vector_wise_mask",
    "search_shflbw_pattern",
    "prune_shflbw",
]


@dataclass(frozen=True)
class ShflBWSearchResult:
    """Outcome of the Shfl-BW pattern search.

    Attributes
    ----------
    mask:
        Boolean keep-mask in the *original* row order.
    row_indices:
        Witness row permutation: permuting the mask rows by it yields a
        vector-wise sparse mask.
    groups:
        The row groups discovered by the search (original row indices).
    retained_score:
        Sum of importance scores covered by the mask.
    total_score:
        Sum of all importance scores (for normalisation).
    """

    mask: np.ndarray
    row_indices: np.ndarray
    groups: tuple[tuple[int, ...], ...]
    retained_score: float
    total_score: float

    @property
    def retained_fraction(self) -> float:
        """Fraction of total importance kept by the pattern."""
        if self.total_score <= 0:
            return 1.0
        return self.retained_score / self.total_score

    @property
    def density(self) -> float:
        """Achieved non-zero ratio of the mask."""
        return float(self.mask.mean())


def _check_scores(scores: np.ndarray) -> np.ndarray:
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"scores must be a 2-D matrix, got shape {scores.shape}")
    # NaN compares False against everything, so a plain `scores < 0` check
    # would let non-finite scores flow into argsort and produce silently
    # wrong masks; reject them explicitly.
    if not np.all(np.isfinite(scores)):
        raise ValueError("importance scores must be finite (no NaN / infinity)")
    if np.any(scores < 0):
        raise ValueError("importance scores must be non-negative")
    return scores


def unstructured_mask(scores: np.ndarray, density: float) -> np.ndarray:
    """Keep the globally top-``density`` fraction of scores.

    Ties are broken by position (earlier entries win) so the result is
    deterministic; the mask always keeps at least one weight.
    """
    scores = _check_scores(scores)
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    total = scores.size
    keep = max(1, int(round(density * total)))
    if keep >= total:
        return np.ones_like(scores, dtype=bool)
    flat = scores.reshape(-1)
    # argsort descending, stable so earlier positions win ties.
    order = np.argsort(-flat, kind="stable")
    mask = np.zeros(total, dtype=bool)
    mask[order[:keep]] = True
    return mask.reshape(scores.shape)


def vector_wise_mask(scores: np.ndarray, density: float, vector_size: int) -> np.ndarray:
    """Vector-wise pruning mask on *consecutive* row groups of size ``V``.

    Each group keeps the ``round(density * K)`` columns with the largest
    summed score (at least one column per group).

    Vectorized over all groups at once: one reshape, one reduction and one
    row-wise stable argsort replace the per-group Python loop.  Bitwise
    identical to :func:`repro.core.reference.vector_wise_mask_loop` — the
    ``(G, V, K)`` middle-axis sum reduces each group's rows in the same
    order as the per-group ``sum(axis=0)``, and a stable row-wise argsort
    matches the per-group 1-D argsort element for element.
    """
    scores = _check_scores(scores)
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    m, k = scores.shape
    v = vector_size
    if v <= 0 or m % v:
        raise ValueError(f"M={m} must be a positive multiple of V={v}")
    keep_cols = max(1, int(round(density * k)))
    group_scores = scores.reshape(m // v, v, k).sum(axis=1)
    order = np.argsort(-group_scores, axis=1, kind="stable")
    group_mask = np.zeros((m // v, k), dtype=bool)
    np.put_along_axis(group_mask, order[:, :keep_cols], True, axis=1)
    return np.repeat(group_mask, v, axis=0)


def search_shflbw_pattern(
    scores: np.ndarray,
    density: float,
    vector_size: int,
    *,
    beta_factor: float = 2.0,
    kmeans_iters: int = 10,
    seed: int = 0,
) -> ShflBWSearchResult:
    """Run the two-stage pattern search of Figure 5.

    Parameters
    ----------
    scores:
        Non-negative importance scores (the paper uses absolute weights).
    density:
        Target non-zero ratio ``alpha``.
    vector_size:
        Row-group height ``V``.
    beta_factor:
        Ratio ``beta / alpha`` of the reduced-sparsity unstructured mask used
        for the row-group search (2.0 in the paper).
    kmeans_iters, seed:
        Balanced k-means parameters.
    """
    scores = _check_scores(scores)
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    if beta_factor <= 0:
        raise ValueError("beta_factor must be positive")
    m, _ = scores.shape
    if vector_size <= 0 or m % vector_size:
        raise ValueError(f"M={m} must be a positive multiple of V={vector_size}")

    # Stage 1 — row-group search on a reduced-sparsity unstructured mask.
    beta = min(1.0, beta_factor * density)
    coarse_mask = unstructured_mask(scores, beta)
    groups = balanced_kmeans(
        coarse_mask.astype(np.float64),
        vector_size,
        num_iters=kmeans_iters,
        seed=seed,
    )
    row_indices = groups_to_permutation(groups, m)

    # Stage 2 — vector-wise pruning on the permuted scores, then reverse.
    permuted_scores = scores[row_indices, :]
    permuted_mask = vector_wise_mask(permuted_scores, density, vector_size)
    mask = np.zeros_like(permuted_mask)
    mask[row_indices, :] = permuted_mask

    retained = float(scores[mask].sum())
    total = float(scores.sum())
    return ShflBWSearchResult(
        mask=mask,
        row_indices=row_indices,
        groups=tuple(tuple(int(i) for i in g) for g in groups),
        retained_score=retained,
        total_score=total,
    )


def prune_shflbw(
    weights: np.ndarray,
    sparsity: float,
    vector_size: int,
    *,
    scores: np.ndarray | None = None,
    beta_factor: float = 2.0,
    kmeans_iters: int = 10,
    seed: int = 0,
) -> tuple[np.ndarray, ShflBWSearchResult]:
    """Prune a weight matrix to Shfl-BW sparsity.

    Parameters
    ----------
    weights:
        Dense ``(M, K)`` weight matrix.
    sparsity:
        Target fraction of pruned weights (e.g. 0.75).
    vector_size:
        Row-group height ``V``.
    scores:
        Importance scores; defaults to ``abs(weights)`` (magnitude pruning,
        the criterion the paper uses).

    Returns
    -------
    (pruned_weights, result)
        The masked weight matrix (original row order) and the search result
        containing the witness permutation.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError("weights must be a 2-D matrix")
    if not 0.0 <= sparsity < 1.0:
        raise ValueError("sparsity must be in [0, 1)")
    if scores is None:
        scores = np.abs(weights)
    result = search_shflbw_pattern(
        scores,
        density=1.0 - sparsity,
        vector_size=vector_size,
        beta_factor=beta_factor,
        kmeans_iters=kmeans_iters,
        seed=seed,
    )
    return weights * result.mask, result
