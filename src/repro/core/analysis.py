"""Flexibility and computation-efficiency analysis (Section 3.2).

Two quantitative arguments underpin the paper's pattern design:

* **Flexibility** — the number of candidate weight structures a pattern can
  express at a given sparsity.  More candidates means a better chance of
  covering the important weights.  The counts are astronomically large, so
  everything here works in natural-log space (``log_*`` functions return
  ``ln(count)``).
* **Computation efficiency** — the data reuse (operation intensity) the
  pattern allows a tiled kernel to reach.  Unstructured / balanced patterns
  are limited to ``sqrt(alpha)`` of the dense reuse, while block-wise /
  vector-wise / Shfl-BW recover the dense reuse when ``V`` is at least the
  register-file-optimal tile size.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy.special import gammaln

from ..gpu.arch import GPUArch
from ..gpu.roofline import max_reuse_blockwise, max_reuse_dense, max_reuse_unstructured

__all__ = [
    "log_factorial",
    "log_binomial",
    "log_row_shuffle_multiplier",
    "log_candidates_unstructured",
    "log_candidates_blockwise",
    "log_candidates_vectorwise",
    "log_candidates_shflbw",
    "log_candidates_balanced",
    "log_candidates",
    "PatternAnalysis",
    "analyze_pattern",
    "compare_patterns",
]


def log_factorial(n: int) -> float:
    """``ln(n!)`` computed via the log-gamma function."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return float(gammaln(n + 1))


def log_binomial(n: int, k: int) -> float:
    """``ln(C(n, k))``; zero when the choice is degenerate."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if k < 0 or k > n:
        return float("-inf")
    return log_factorial(n) - log_factorial(k) - log_factorial(n - k)


def _kept_count(total: int, density: float) -> int:
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    return max(1, int(round(total * density)))


def log_row_shuffle_multiplier(m: int, vector_size: int) -> float:
    """``ln( M! / (V!)^(M/V) )`` — the factor by which row shuffling enlarges
    the vector-wise candidate space (Section 3.2.1).

    For ``M = 512`` and ``V = 128`` this exceeds 700, i.e. the multiplier is
    larger than ``e^700`` as quoted in the paper.
    """
    if vector_size <= 0 or m <= 0 or m % vector_size:
        raise ValueError("M must be a positive multiple of V")
    num_groups = m // vector_size
    return log_factorial(m) - num_groups * log_factorial(vector_size)


def log_candidates_unstructured(m: int, k: int, density: float) -> float:
    """``ln C(M*K, nnz)`` — candidate structures of unstructured sparsity."""
    total = m * k
    return log_binomial(total, _kept_count(total, density))


def log_candidates_blockwise(m: int, k: int, vector_size: int, density: float) -> float:
    """Candidate structures of ``V x V`` block-wise sparsity."""
    if m % vector_size or k % vector_size:
        raise ValueError("M and K must be multiples of V")
    total_blocks = (m // vector_size) * (k // vector_size)
    kept_blocks = _kept_count(total_blocks, density)
    return log_binomial(total_blocks, kept_blocks)


def log_candidates_vectorwise(m: int, k: int, vector_size: int, density: float) -> float:
    """Candidate structures of vector-wise sparsity (``V x 1`` vectors).

    Each of the ``M / V`` fixed consecutive row groups independently chooses
    which columns to keep.
    """
    if m % vector_size:
        raise ValueError("M must be a multiple of V")
    num_groups = m // vector_size
    kept_cols = _kept_count(k, density)
    return num_groups * log_binomial(k, kept_cols)


def log_candidates_shflbw(m: int, k: int, vector_size: int, density: float) -> float:
    """Candidate structures of Shfl-BW sparsity.

    Row shuffling multiplies the vector-wise candidate space by
    ``M! / (V!)^(M/V)`` (Section 3.2.1).
    """
    return log_candidates_vectorwise(m, k, vector_size, density) + log_row_shuffle_multiplier(
        m, vector_size
    )


def log_candidates_balanced(m: int, k: int, n: int = 2, group: int = 4) -> float:
    """Candidate structures of balanced ``n:group`` sparsity.

    Every group of ``group`` values independently chooses ``n`` positions; the
    sparsity level is fixed by the pattern (e.g. 50 % for 2:4).
    """
    if k % group:
        raise ValueError("K must be a multiple of the balance group size")
    num_groups = m * (k // group)
    return num_groups * log_binomial(group, n)


def log_candidates(
    pattern: str, m: int, k: int, density: float, vector_size: int = 32
) -> float:
    """Dispatch on a pattern name (see :class:`repro.core.pattern.PatternKind`)."""
    from .pattern import PatternKind

    kind = PatternKind.parse(pattern)
    if kind is PatternKind.UNSTRUCTURED:
        return log_candidates_unstructured(m, k, density)
    if kind is PatternKind.BLOCKWISE:
        return log_candidates_blockwise(m, k, vector_size, density)
    if kind is PatternKind.VECTORWISE:
        return log_candidates_vectorwise(m, k, vector_size, density)
    if kind is PatternKind.SHFLBW:
        return log_candidates_shflbw(m, k, vector_size, density)
    if kind is PatternKind.BALANCED:
        return log_candidates_balanced(m, k)
    if kind is PatternKind.DENSE:
        return 0.0
    raise ValueError(f"unsupported pattern {pattern!r}")


@dataclass(frozen=True)
class PatternAnalysis:
    """Flexibility + efficiency summary of one pattern at one operating point."""

    pattern: str
    density: float
    vector_size: int
    log_candidates: float
    max_reuse_flop_per_byte: float
    reuse_vs_dense: float


def analyze_pattern(
    pattern: str,
    arch: GPUArch,
    m: int,
    k: int,
    density: float,
    vector_size: int = 32,
) -> PatternAnalysis:
    """Compute the Section 3.2 metrics for one pattern on one GPU."""
    from .pattern import PatternKind

    kind = PatternKind.parse(pattern)
    dense_reuse = max_reuse_dense(arch)
    if kind in (PatternKind.UNSTRUCTURED, PatternKind.BALANCED):
        reuse = max_reuse_unstructured(arch, density)
    elif kind is PatternKind.DENSE:
        reuse = dense_reuse
    else:
        reuse = max_reuse_blockwise(arch, vector_size)
    return PatternAnalysis(
        pattern=kind.value,
        density=density,
        vector_size=vector_size,
        log_candidates=log_candidates(pattern, m, k, density, vector_size),
        max_reuse_flop_per_byte=reuse,
        reuse_vs_dense=reuse / dense_reuse if dense_reuse > 0 else 0.0,
    )


def compare_patterns(
    arch: GPUArch,
    m: int,
    k: int,
    density: float,
    vector_size: int = 32,
    patterns: tuple[str, ...] = ("unstructured", "balanced", "vectorwise", "blockwise", "shflbw"),
) -> list[PatternAnalysis]:
    """Analyse several patterns at the same operating point (Figure 3 ordering)."""
    return [
        analyze_pattern(p, arch, m, k, density, vector_size=vector_size) for p in patterns
    ]
