"""Row/column permutation transforms used by the Shfl-BW kernels and pruner.

These are the pure-array counterparts of the GPU-kernel techniques:

* :func:`apply_row_permutation` / :func:`invert_permutation` /
  :func:`reordered_write_back` — the offline row reorder (Figure 4 step (a))
  and the on-line reordered write-back (step (e)),
* :func:`group_rows_by_support` — grouping rows with identical non-zero
  patterns, the idealised version of what the pattern search approximates,
* :func:`stitch_activation_rows` — the in-buffer stitching of activation rows
  named by a panel's column indices (step (b)).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "apply_row_permutation",
    "invert_permutation",
    "reordered_write_back",
    "group_rows_by_support",
    "groups_to_permutation",
    "stitch_activation_rows",
]


def _check_permutation(perm: np.ndarray, m: int) -> np.ndarray:
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (m,):
        raise ValueError(f"permutation must have shape ({m},), got {perm.shape}")
    if sorted(perm.tolist()) != list(range(m)):
        raise ValueError("permutation must contain every row index exactly once")
    return perm


def apply_row_permutation(matrix: np.ndarray, row_indices: np.ndarray) -> np.ndarray:
    """Gather rows so that permuted row ``p`` holds original row
    ``row_indices[p]`` (the offline reorder of Figure 4 step (a))."""
    matrix = np.asarray(matrix)
    perm = _check_permutation(row_indices, matrix.shape[0])
    return matrix[perm, :]


def invert_permutation(row_indices: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``inv[row_indices[p]] == p``."""
    row_indices = np.asarray(row_indices, dtype=np.int64)
    inv = np.empty_like(row_indices)
    inv[row_indices] = np.arange(len(row_indices), dtype=np.int64)
    return inv


def reordered_write_back(permuted_output: np.ndarray, row_indices: np.ndarray) -> np.ndarray:
    """Scatter a permuted result back to the original row ordering.

    This is the array-level reordered write-back of Figure 4 step (e):
    permuted row ``p`` is written to original row ``row_indices[p]``.
    """
    permuted_output = np.asarray(permuted_output)
    perm = _check_permutation(row_indices, permuted_output.shape[0])
    out = np.empty_like(permuted_output)
    out[perm, ...] = permuted_output
    return out


def group_rows_by_support(mask: np.ndarray, vector_size: int) -> list[np.ndarray]:
    """Group rows that share an identical non-zero column support.

    Rows with the same support are emitted in groups of exactly
    ``vector_size``; if a support's multiplicity is not a multiple of
    ``vector_size`` the remainder rows are pooled and grouped together in
    index order (so the function always returns ``M / V`` groups of ``V``
    rows).  This exact grouping is what a perfectly Shfl-BW matrix admits; on
    arbitrary masks it is the starting point the k-means search improves on.
    """
    mask = np.asarray(mask) != 0
    m = mask.shape[0]
    v = vector_size
    if v <= 0 or m % v:
        raise ValueError(f"M={m} must be a positive multiple of V={v}")
    if m == 0:
        return []

    # Hash every row at once by packing its support bits into uint64 words
    # and lexsorting those; identical supports get one id each.  Any total
    # order works here (ids are remapped below to first-appearance order —
    # the order the seed's insertion-ordered dict iterated supports in, see
    # :func:`repro.core.reference.group_rows_by_support_loop`), and sorting
    # fixed-width integer words is much cheaper than ``np.unique(axis=0)``'s
    # generic row comparisons.
    if mask.shape[1]:
        packed = np.packbits(mask, axis=1)
        pad = -packed.shape[1] % 8
        if pad:
            packed = np.concatenate(
                [packed, np.zeros((m, pad), dtype=np.uint8)], axis=1
            )
        words = np.ascontiguousarray(packed).view(np.uint64)
        word_order = np.lexsort(words.T[::-1])
        sorted_words = words[word_order]
        new_support = np.empty(m, dtype=bool)
        new_support[0] = True
        new_support[1:] = np.any(sorted_words[1:] != sorted_words[:-1], axis=1)
        inverse = np.empty(m, dtype=np.int64)
        inverse[word_order] = np.cumsum(new_support) - 1
    else:
        # Zero-width masks: every row shares the empty support.
        inverse = np.zeros(m, dtype=np.int64)
    order = np.argsort(inverse, kind="stable")  # by support id, rows ascending
    counts = np.bincount(inverse)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    # The first (smallest) row index of each support identifies its
    # first-appearance position.
    id_order = np.argsort(order[starts], kind="stable")

    # Each support contributes its first counts//v * v rows (ascending) as
    # full groups; its trailing remainder rows are pooled as leftovers.
    rank = np.arange(m, dtype=np.int64) - np.repeat(starts, counts)
    full_rows = (counts // v) * v
    kept = rank < np.repeat(full_rows, counts)

    # Gather the full-group rows support by support, in first-appearance
    # order (a strided segment gather: one global arange, no Python loop
    # over rows).
    sel_counts = full_rows[id_order]
    total = int(sel_counts.sum())
    if total:
        sel_starts = np.concatenate(([0], np.cumsum(sel_counts)[:-1]))
        offsets = np.arange(total, dtype=np.int64) - np.repeat(sel_starts, sel_counts)
        grouped = order[np.repeat(starts[id_order], sel_counts) + offsets]
    else:
        grouped = np.zeros(0, dtype=np.int64)
    leftovers = np.sort(order[~kept])

    groups = [g.astype(np.int64) for g in grouped.reshape(-1, v)]
    groups.extend(g.astype(np.int64) for g in leftovers.reshape(-1, v))
    return groups


def groups_to_permutation(groups: list[np.ndarray], m: int) -> np.ndarray:
    """Concatenate row groups into a permutation array and sanity-check it."""
    perm = np.concatenate([np.asarray(g, dtype=np.int64) for g in groups]) if groups else np.zeros(0, dtype=np.int64)
    return _check_permutation(perm, m)


def stitch_activation_rows(activations: np.ndarray, columns: np.ndarray) -> np.ndarray:
    """Gather activation rows named by a stitched panel's column indices.

    Padding lanes (column index ``-1``) produce zero rows, matching the zero
    contribution of the padded weight columns in the kernel.
    """
    activations = np.asarray(activations, dtype=np.float64)
    columns = np.asarray(columns, dtype=np.int64)
    if activations.ndim != 2:
        raise ValueError("activations must be a 2-D (K, N) matrix")
    if columns.size and columns.max() >= activations.shape[0]:
        raise ValueError("column index out of range")
    # Only -1 is the documented padding lane; any other negative index is an
    # upstream bug and must not silently read as a zero row.
    if columns.size and columns.min() < -1:
        raise ValueError("column indices must be >= -1 (-1 marks a padding lane)")
    out = np.zeros((len(columns), activations.shape[1]), dtype=np.float64)
    valid = columns >= 0
    out[valid, :] = activations[columns[valid], :]
    return out
