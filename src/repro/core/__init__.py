"""The paper's primary contribution: the Shfl-BW pattern, its transforms,
the pattern-search (pruning) algorithm and the flexibility/efficiency
analysis."""

from .analysis import (
    PatternAnalysis,
    analyze_pattern,
    compare_patterns,
    log_binomial,
    log_candidates,
    log_candidates_balanced,
    log_candidates_blockwise,
    log_candidates_shflbw,
    log_candidates_unstructured,
    log_candidates_vectorwise,
    log_factorial,
    log_row_shuffle_multiplier,
)
from .kmeans import balanced_kmeans, kmeans_plusplus_init
from .pattern import PatternKind, ShflBWPattern
from .pruning import (
    ShflBWSearchResult,
    prune_shflbw,
    search_shflbw_pattern,
    unstructured_mask,
    vector_wise_mask,
)
from .transforms import (
    apply_row_permutation,
    group_rows_by_support,
    groups_to_permutation,
    invert_permutation,
    reordered_write_back,
    stitch_activation_rows,
)

__all__ = [
    "PatternAnalysis",
    "analyze_pattern",
    "compare_patterns",
    "log_binomial",
    "log_candidates",
    "log_candidates_balanced",
    "log_candidates_blockwise",
    "log_candidates_shflbw",
    "log_candidates_unstructured",
    "log_candidates_vectorwise",
    "log_factorial",
    "log_row_shuffle_multiplier",
    "balanced_kmeans",
    "kmeans_plusplus_init",
    "PatternKind",
    "ShflBWPattern",
    "ShflBWSearchResult",
    "prune_shflbw",
    "search_shflbw_pattern",
    "unstructured_mask",
    "vector_wise_mask",
    "apply_row_permutation",
    "group_rows_by_support",
    "groups_to_permutation",
    "invert_permutation",
    "reordered_write_back",
    "stitch_activation_rows",
]
