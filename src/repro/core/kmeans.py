"""Capacity-constrained (balanced) k-means for row-mask clustering.

The Shfl-BW pattern search (Section 5, Figure 5) clusters the rows of a binary
importance mask into groups of exactly ``V`` rows, so that rows keeping
weights in similar columns end up in the same group.  Standard k-means does
not respect the fixed group size, so this module implements a balanced
variant:

1. centroids are seeded with k-means++ over the binary rows,
2. each iteration assigns rows to centroids greedily in ascending distance
   order subject to a per-cluster capacity of ``V``,
3. centroids are recomputed as the mean of their assigned rows.

Distances are squared Euclidean, which on binary vectors equals the Hamming
distance; everything is deterministic given the ``seed``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["balanced_kmeans", "kmeans_plusplus_init"]


def kmeans_plusplus_init(
    points: np.ndarray, num_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread the initial centroids across the data."""
    n = points.shape[0]
    if num_clusters <= 0 or num_clusters > n:
        raise ValueError("num_clusters must be in [1, n_points]")
    centroids = np.empty((num_clusters, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = points[first]
    closest = np.sum((points - centroids[0]) ** 2, axis=1)
    for c in range(1, num_clusters):
        total = closest.sum()
        if total <= 0:
            # All remaining points coincide with an existing centroid.
            idx = int(rng.integers(n))
        else:
            probs = closest / total
            idx = int(rng.choice(n, p=probs))
        centroids[c] = points[idx]
        closest = np.minimum(closest, np.sum((points - centroids[c]) ** 2, axis=1))
    return centroids


def _balanced_assignment(
    points: np.ndarray, centroids: np.ndarray, capacity: int
) -> np.ndarray:
    """Greedy capacity-constrained assignment.

    Returns an array ``assign`` with ``assign[i]`` the cluster of row ``i``;
    every cluster receives exactly ``capacity`` rows.
    """
    n = points.shape[0]
    k = centroids.shape[0]
    # (n, k) squared distances.
    dists = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    order = np.argsort(dists, axis=None, kind="stable")
    assign = np.full(n, -1, dtype=np.int64)
    remaining = np.full(k, capacity, dtype=np.int64)
    assigned = 0
    for flat in order:
        row, cluster = divmod(int(flat), k)
        if assign[row] != -1 or remaining[cluster] == 0:
            continue
        assign[row] = cluster
        remaining[cluster] -= 1
        assigned += 1
        if assigned == n:
            break
    return assign


def balanced_kmeans(
    points: np.ndarray,
    group_size: int,
    *,
    num_iters: int = 10,
    seed: int = 0,
) -> list[np.ndarray]:
    """Cluster ``points`` (rows) into groups of exactly ``group_size``.

    Parameters
    ----------
    points:
        ``(M, K)`` array; for the pattern search this is the binary mask from
        the reduced-sparsity unstructured pruning step.
    group_size:
        Required rows per group (the vector size ``V``); ``M`` must be a
        multiple of it.
    num_iters:
        Lloyd iterations (each with a balanced assignment).
    seed:
        Seed for the k-means++ initialisation.

    Returns
    -------
    list of arrays
        ``M / group_size`` arrays of row indices, each of length
        ``group_size``, sorted within each group; groups are ordered by their
        smallest member so the output is deterministic.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    m = points.shape[0]
    if group_size <= 0 or m % group_size:
        raise ValueError(f"M={m} must be a positive multiple of group_size={group_size}")
    num_clusters = m // group_size
    if num_clusters == 1:
        return [np.arange(m, dtype=np.int64)]

    rng = np.random.default_rng(seed)
    centroids = kmeans_plusplus_init(points, num_clusters, rng)
    assign = _balanced_assignment(points, centroids, group_size)
    for _ in range(max(0, num_iters - 1)):
        for c in range(num_clusters):
            members = points[assign == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
        new_assign = _balanced_assignment(points, centroids, group_size)
        if np.array_equal(new_assign, assign):
            break
        assign = new_assign

    groups = [
        np.sort(np.nonzero(assign == c)[0]).astype(np.int64)
        for c in range(num_clusters)
    ]
    groups.sort(key=lambda g: int(g[0]))
    return groups
