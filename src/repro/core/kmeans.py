"""Capacity-constrained (balanced) k-means for row-mask clustering.

The Shfl-BW pattern search (Section 5, Figure 5) clusters the rows of a binary
importance mask into groups of exactly ``V`` rows, so that rows keeping
weights in similar columns end up in the same group.  Standard k-means does
not respect the fixed group size, so this module implements a balanced
variant:

1. centroids are seeded with k-means++ over the binary rows,
2. each iteration assigns rows to centroids greedily in ascending distance
   order subject to a per-cluster capacity of ``V``,
3. centroids are recomputed as the mean of their assigned rows.

Distances are squared Euclidean, which on binary vectors equals the Hamming
distance; everything is deterministic given the ``seed``.

This is the vectorized engine; the original scalar implementation (one Python
loop iteration per sorted distance pair — ``n * k`` iterations per Lloyd
step) is preserved verbatim in :mod:`repro.core.reference` as the
bit-for-bit oracle the property tests compare against.  Three techniques
replace the loops without changing a single output bit:

* **Exact Gram-matrix distances** — on the pattern search's actual inputs
  (binary mask rows, power-of-two group sizes) every quantity involved is a
  dyadic rational with a small numerator: points are 0/1, centroids are
  means of ``V = 2^t`` binary rows (``j / V``), so squared distances are
  exact multiples of ``1 / V^2`` well below 2^53.  Floating-point addition
  and multiplication on such values are *exact* in any association order,
  which makes the BLAS form ``|x|^2 - 2 x.c + |c|^2`` bitwise identical to
  the seed's elementwise ``((x - c) ** 2).sum()`` — at a matmul's cost
  instead of an ``(n, k, K)`` broadcast.
* **Chunked broadcasting** — for inputs outside that regime (non-binary
  points, non-power-of-two capacities) the seed expression is evaluated
  verbatim over row blocks: elementwise ops and a last-axis reduction are
  independent of the leading batch dimension, so the result is bitwise
  identical while the ``(n, k, K)`` intermediate never materialises.
* **Prefix-accepted greedy rounds** — the capacity-constrained assignment
  walks the sorted distance pairs in vectorized chunks.  Within a chunk,
  duplicate-row pairs are skipped and every pair up to the first *capacity*
  rejection is provably processed exactly as the sequential greedy would,
  so whole prefixes are accepted per round instead of one pair per Python
  iteration; each rejection permanently retires a full cluster, bounding
  the number of rounds by the cluster count.
"""

from __future__ import annotations

import numpy as np

__all__ = ["balanced_kmeans", "kmeans_plusplus_init"]

#: Elements per distance-chunk in the broadcast fallback (about 32 MiB of
#: float64 intermediates per block, instead of the seed's full (n, k, K)).
_CHUNK_ELEMENTS = 1 << 22


def _is_binary(points: np.ndarray) -> bool:
    """Whether every entry is exactly 0.0 or 1.0 (the pattern-search case)."""
    return bool(np.all((points == 0.0) | (points == 1.0)))


def _exact_denominator(centroids: np.ndarray, capacity: int | None) -> int | None:
    """A power-of-two ``D`` with ``centroids * D`` exactly integral, if any.

    Multiplying by a power of two only shifts exponents, so the integrality
    check is itself exact: a hit proves every centroid entry is a dyadic
    rational ``j / D`` represented without rounding.  Candidates are ``1``
    (centroids that are raw binary rows, e.g. the k-means++ seeds) and the
    group capacity when it is a power of two (centroids that are means of
    ``capacity`` binary rows).  Returns ``None`` when no candidate fits.
    """
    candidates = [1]
    if capacity is not None and capacity > 0 and capacity & (capacity - 1) == 0:
        candidates.append(capacity)
    for denom in candidates:
        scaled = centroids * float(denom)
        if np.all(scaled == np.rint(scaled)):
            return denom
    return None


def _pairwise_sq_dists(
    points: np.ndarray, centroids: np.ndarray, capacity: int | None = None
) -> np.ndarray:
    """``(n, k)`` squared distances, bitwise equal to the seed broadcast.

    The fast path rewrites ``|x - c|^2`` as ``|x|^2 - 2 x.c + |c|^2`` and is
    only taken when every term is provably exact (binary points, dyadic
    centroids, sums below 2^53) — then *any* summation order, including the
    BLAS one, yields the identical float.  Otherwise the seed expression is
    evaluated verbatim over row chunks, which is bitwise identical because
    elementwise arithmetic and the last-axis pairwise sum do not depend on
    the leading dimension.
    """
    n, dim = points.shape
    if _is_binary(points):
        denom = _exact_denominator(centroids, capacity)
        # Distance numerators are bounded by dim * denom**2; staying far
        # below 2**53 guarantees every partial sum is exact.
        if denom is not None and dim * denom * denom < (1 << 52):
            row_sq = np.einsum("ij,ij->i", points, points)
            cent_sq = np.einsum("ij,ij->i", centroids, centroids)
            return row_sq[:, None] - 2.0 * (points @ centroids.T) + cent_sq[None, :]
    k = centroids.shape[0]
    dists = np.empty((n, k), dtype=np.float64)
    chunk = max(1, _CHUNK_ELEMENTS // max(1, k * max(1, dim)))
    for start in range(0, n, chunk):
        block = points[start : start + chunk]
        dists[start : start + chunk] = (
            (block[:, None, :] - centroids[None, :, :]) ** 2
        ).sum(axis=2)
    return dists


def kmeans_plusplus_init(
    points: np.ndarray, num_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread the initial centroids across the data."""
    n = points.shape[0]
    if num_clusters <= 0 or num_clusters > n:
        raise ValueError("num_clusters must be in [1, n_points]")
    points = np.asarray(points)
    # Candidate centroids are raw data rows, so on binary inputs every
    # distance is an exact integer (the Hamming distance) no matter how it
    # is summed: the Gram form below equals the seed broadcast bit-for-bit
    # at a matvec's cost per centroid.
    binary = _is_binary(points)
    if binary:
        row_sq = np.einsum("ij,ij->i", points, points)

    def _sq_dists_to(centroid: np.ndarray) -> np.ndarray:
        if binary:
            return row_sq - 2.0 * (points @ centroid) + centroid.sum()
        return np.sum((points - centroid) ** 2, axis=1)

    centroids = np.empty((num_clusters, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = points[first]
    closest = _sq_dists_to(centroids[0])
    for c in range(1, num_clusters):
        total = closest.sum()
        if total <= 0:
            # All remaining points coincide with an existing centroid.
            idx = int(rng.integers(n))
        else:
            probs = closest / total
            idx = int(rng.choice(n, p=probs))
        centroids[c] = points[idx]
        closest = np.minimum(closest, _sq_dists_to(centroids[c]))
    return centroids


def _occurrence_rank(keys: np.ndarray) -> np.ndarray:
    """Per-element occurrence index among equal keys, in array order."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    new_group = np.empty(keys.size, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_keys[1:] != sorted_keys[:-1]
    starts = np.flatnonzero(new_group)
    counts = np.diff(np.append(starts, keys.size))
    ranks = np.empty(keys.size, dtype=np.int64)
    ranks[order] = np.arange(keys.size, dtype=np.int64) - np.repeat(starts, counts)
    return ranks


def _assign_in_order(order: np.ndarray, n: int, k: int, capacity: int) -> np.ndarray:
    """Replay the sequential greedy over sorted pairs in vectorized rounds.

    Equivalence to the one-pair-at-a-time loop: within a filtered chunk
    (unassigned rows, clusters with spare capacity), a pair is rejected by
    the sequential greedy only if its row was claimed by an earlier chunk
    pair or its cluster's capacity was exhausted by earlier chunk pairs.
    Duplicate-row pairs never consume capacity, so up to the first *capacity*
    rejection every non-duplicate pair is accepted and every duplicate's row
    is provably already assigned — the whole prefix can be committed at
    once.  The rejected pair itself targets a now-full cluster, so it is
    dead; the tail is refiltered and replayed.
    """
    assign = np.full(n, -1, dtype=np.int64)
    remaining = np.full(k, capacity, dtype=np.int64)
    assigned = 0
    chunk = max(4096, 4 * n)
    for start in range(0, order.size, chunk):
        rows, clusters = np.divmod(order[start : start + chunk], k)
        live = (assign[rows] == -1) & (remaining[clusters] > 0)
        rows = rows[live]
        clusters = clusters[live]
        while rows.size:
            first = _occurrence_rank(rows) == 0
            candidates = np.flatnonzero(first)
            candidate_clusters = clusters[candidates]
            ranks = _occurrence_rank(candidate_clusters)
            rejected = np.flatnonzero(ranks >= remaining[candidate_clusters])
            if rejected.size:
                cut = rejected[0]
                accepted = candidates[:cut]
                resume = candidates[cut] + 1
            else:
                accepted = candidates
                resume = rows.size
            if accepted.size:
                assign[rows[accepted]] = clusters[accepted]
                remaining -= np.bincount(clusters[accepted], minlength=k)
                assigned += accepted.size
                if assigned == n:
                    return assign
            rows = rows[resume:]
            clusters = clusters[resume:]
            if rows.size:
                live = (assign[rows] == -1) & (remaining[clusters] > 0)
                rows = rows[live]
                clusters = clusters[live]
    return assign


def _balanced_assignment(
    points: np.ndarray, centroids: np.ndarray, capacity: int
) -> np.ndarray:
    """Greedy capacity-constrained assignment.

    Returns an array ``assign`` with ``assign[i]`` the cluster of row ``i``;
    every cluster receives exactly ``capacity`` rows.  Bitwise identical to
    :func:`repro.core.reference.balanced_assignment_loop`.
    """
    n = points.shape[0]
    k = centroids.shape[0]
    dists = _pairwise_sq_dists(points, centroids, capacity)
    order = np.argsort(dists, axis=None, kind="stable")
    return _assign_in_order(order, n, k, capacity)


def _balanced_centroids(
    points: np.ndarray, assign: np.ndarray, num_clusters: int, group_size: int
) -> np.ndarray:
    """Mean of each cluster's rows, all clusters at once.

    The balanced assignment fills every cluster with exactly ``group_size``
    rows, so a stable sort by cluster id reshapes straight into
    ``(k, V, K)``; the mean over the middle axis reduces each cluster's rows
    in the same order (ascending row index) and with the same reduction as
    the seed's per-cluster ``points[assign == c].mean(axis=0)``.
    """
    order = np.argsort(assign, kind="stable")
    return points[order].reshape(num_clusters, group_size, -1).mean(axis=1)


def balanced_kmeans(
    points: np.ndarray,
    group_size: int,
    *,
    num_iters: int = 10,
    seed: int = 0,
) -> list[np.ndarray]:
    """Cluster ``points`` (rows) into groups of exactly ``group_size``.

    Parameters
    ----------
    points:
        ``(M, K)`` array; for the pattern search this is the binary mask from
        the reduced-sparsity unstructured pruning step.
    group_size:
        Required rows per group (the vector size ``V``); ``M`` must be a
        multiple of it.
    num_iters:
        Lloyd iterations (each with a balanced assignment).
    seed:
        Seed for the k-means++ initialisation.

    Returns
    -------
    list of arrays
        ``M / group_size`` arrays of row indices, each of length
        ``group_size``, sorted within each group; groups are ordered by their
        smallest member so the output is deterministic.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    m = points.shape[0]
    if group_size <= 0 or m % group_size:
        raise ValueError(f"M={m} must be a positive multiple of group_size={group_size}")
    num_clusters = m // group_size
    if num_clusters == 1:
        return [np.arange(m, dtype=np.int64)]

    rng = np.random.default_rng(seed)
    centroids = kmeans_plusplus_init(points, num_clusters, rng)
    assign = _balanced_assignment(points, centroids, group_size)
    for _ in range(max(0, num_iters - 1)):
        centroids = _balanced_centroids(points, assign, num_clusters, group_size)
        new_assign = _balanced_assignment(points, centroids, group_size)
        if np.array_equal(new_assign, assign):
            break
        assign = new_assign

    order = np.argsort(assign, kind="stable")
    groups = [
        order[c * group_size : (c + 1) * group_size].astype(np.int64)
        for c in range(num_clusters)
    ]
    groups.sort(key=lambda g: int(g[0]))
    return groups
