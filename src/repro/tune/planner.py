"""Cost-model-driven kernel autotuner and its persistent plan cache.

The paper's central observation is that no single sparse kernel wins
everywhere — the best choice among shfl-bw, sputnik, cuSPARSELt, vector-wise,
tile-wise and dense GEMM depends on layer shape, sparsity and GPU (the
Figure 1 regions).  The :class:`Autotuner` turns that observation into an
execution plan: for every layer of a workload it enumerates the candidate
pool (:func:`repro.tune.candidates.default_candidates`), prunes statically
infeasible kernels from their capability metadata, scores the survivors with
the analytical timing model (:func:`repro.eval.speedup.layer_time`) and
assigns each layer the argmin.  An optional
:class:`~repro.tune.measure.MeasuredRefiner` re-ranks the analytical top-k by
measured functional wall time.

Plans are persistent and versioned: :class:`PlanCache` stores them as JSON
keyed by a canonical-JSON request hash — the same hashing discipline as
:class:`repro.eval.runner.ResultCache` — salted with
:data:`repro.eval.runner.MODEL_VERSION`, so a timing-model bump orphans every
cached plan instead of silently serving stale assignments.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..eval.runner import (
    MODEL_VERSION,
    CacheStats,
    KernelSpec,
    _freeze_kwargs,
)
from ..eval.store import CacheStore, make_store
from ..gpu.arch import get_gpu
from ..kernels.base import GEMMShape, KernelNotApplicableError
from ..models.shapes import LayerShape, model_layers
from .candidates import (
    build_kernel,
    candidate_density,
    default_candidates,
    prune_candidates,
)
from .measure import Refiner

__all__ = [
    "PLAN_FILENAME",
    "LayerAssignment",
    "TuningPlan",
    "PlanCache",
    "Autotuner",
    "gemm_layer",
]

#: File the :class:`PlanCache` keeps inside its cache directory.
PLAN_FILENAME = "tuning-plans.json"


def gemm_layer(gemm: tuple[int, int, int], *, name: str | None = None) -> LayerShape:
    """A single explicit ``(M, N, K)`` problem as a one-layer workload
    (the Figure 1 tuning mode)."""
    m, n, k = (int(v) for v in gemm)
    return LayerShape(name or f"gemm-{m}x{n}x{k}", GEMMShape(m=m, n=n, k=k))


@dataclass(frozen=True)
class LayerAssignment:
    """The tuned kernel choice for one layer of a workload.

    ``time_s`` is the modelled time of one occurrence; ``count`` the layer's
    multiplicity; ``considered`` / ``pruned`` record how many candidates were
    scored and how many the static capability stage rejected.
    """

    layer: str
    kernel: str
    kernel_kwargs: tuple[tuple[str, object], ...]
    label: str
    time_s: float
    count: int = 1
    considered: int = 0
    pruned: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel_kwargs", _freeze_kwargs(self.kernel_kwargs))

    @property
    def total_time_s(self) -> float:
        """Modelled time of all occurrences of the layer."""
        return self.time_s * self.count

    def to_dict(self) -> dict:
        """JSON-serialisable form (the unit ``TuningPlan`` persists)."""
        return {
            "layer": self.layer,
            "kernel": self.kernel,
            "kernel_kwargs": dict(self.kernel_kwargs),
            "label": self.label,
            "time_s": self.time_s,
            "count": self.count,
            "considered": self.considered,
            "pruned": self.pruned,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "LayerAssignment":
        """Rebuild an assignment from its :meth:`to_dict` form."""
        return cls(
            layer=data["layer"],
            kernel=data["kernel"],
            kernel_kwargs=_freeze_kwargs(data.get("kernel_kwargs", {})),
            label=data.get("label", data["kernel"]),
            time_s=data["time_s"],
            count=data.get("count", 1),
            considered=data.get("considered", 0),
            pruned=data.get("pruned", 0),
        )


@dataclass(frozen=True)
class TuningPlan:
    """A versioned per-layer kernel assignment for one operating point.

    Exactly one of ``model`` (a :func:`repro.models.shapes.model_layers`
    name) or ``gemm`` (an explicit problem) identifies the workload, the same
    convention as :class:`repro.eval.runner.RunConfig`.  ``mode`` is
    ``"model"`` for purely analytical plans and ``"measured"`` when a
    refinement pass re-ranked the shortlist; ``salt`` pins the timing-model
    version the plan was produced under.
    """

    gpu: str
    sparsity: float
    assignments: tuple[LayerAssignment, ...]
    model: str | None = None
    gemm: tuple[int, int, int] | None = None
    mode: str = "model"
    salt: str = MODEL_VERSION
    candidates: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if (self.model is None) == (self.gemm is None):
            raise ValueError("exactly one of model / gemm must be set")
        object.__setattr__(self, "assignments", tuple(self.assignments))
        object.__setattr__(self, "candidates", tuple(self.candidates))
        if self.gemm is not None:
            object.__setattr__(self, "gemm", tuple(int(v) for v in self.gemm))

    @property
    def workload(self) -> str:
        """Human-readable workload identifier."""
        if self.model is not None:
            return self.model
        m, n, k = self.gemm
        return f"gemm-{m}x{n}x{k}"

    @property
    def total_time_s(self) -> float:
        """Modelled whole-workload time under the plan."""
        return sum(assignment.total_time_s for assignment in self.assignments)

    def assignment_for(self, layer: str) -> LayerAssignment:
        """The assignment of one layer by name."""
        for assignment in self.assignments:
            if assignment.layer == layer:
                return assignment
        raise KeyError(f"plan has no layer {layer!r}")

    def kernel_histogram(self) -> dict[str, int]:
        """How many layers each kernel label won."""
        histogram: dict[str, int] = {}
        for assignment in self.assignments:
            histogram[assignment.label] = histogram.get(assignment.label, 0) + 1
        return histogram

    def to_dict(self) -> dict:
        """JSON-serialisable form; also the plan's cache-key payload."""
        return {
            "gpu": self.gpu,
            "sparsity": self.sparsity,
            "model": self.model,
            "gemm": list(self.gemm) if self.gemm is not None else None,
            "mode": self.mode,
            "salt": self.salt,
            "candidates": list(self.candidates),
            "assignments": [assignment.to_dict() for assignment in self.assignments],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TuningPlan":
        """Rebuild a plan from its :meth:`to_dict` form."""
        gemm = data.get("gemm")
        return cls(
            gpu=data["gpu"],
            sparsity=data["sparsity"],
            model=data.get("model"),
            gemm=tuple(gemm) if gemm is not None else None,
            mode=data.get("mode", "model"),
            salt=data.get("salt", MODEL_VERSION),
            candidates=tuple(data.get("candidates", ())),
            assignments=tuple(
                LayerAssignment.from_dict(entry)
                for entry in data.get("assignments", ())
            ),
        )


def _layers_signature(layers: Sequence[LayerShape]) -> list[list]:
    """Canonical digest input for the workload's layer list: the plan must
    invalidate when the shapes it was tuned for change.

    Convolution layers additionally hash their :class:`Conv2dSpec` and input
    resolution — two convolutions can lower to the *same* implicit-GEMM shape
    (e.g. a 1x1 with 9x the input channels of a 3x3) yet time differently
    through the unfold overhead, so the GEMM shape alone must not alias them.
    """
    signature: list[list] = []
    for layer in layers:
        entry: list = [
            layer.name,
            layer.gemm.m,
            layer.gemm.n,
            layer.gemm.k,
            layer.count,
            layer.kind,
        ]
        if layer.kind == "conv":
            conv = layer.conv
            entry.append(
                [
                    conv.in_channels,
                    conv.out_channels,
                    conv.kernel_size,
                    conv.stride,
                    conv.padding,
                    layer.batch,
                    layer.height,
                    layer.width,
                ]
            )
        signature.append(entry)
    return signature


def plan_request_hash(
    *,
    gpu: str,
    sparsity: float,
    layers: Sequence[LayerShape],
    candidates: tuple[KernelSpec, ...],
    mode: str,
    refiner: Refiner | None,
    model: str | None = None,
    gemm: tuple[int, int, int] | None = None,
    salt: str = MODEL_VERSION,
) -> str:
    """Stable hex digest of one tuning request.

    Canonical-JSON hashing with the timing :data:`MODEL_VERSION` as salt,
    exactly the discipline of :meth:`repro.eval.runner.RunConfig.config_hash`:
    the same request hashes identically across processes, and a model bump
    reads as a cold cache.
    """
    payload = json.dumps(
        {
            "salt": salt,
            "gpu": gpu,
            "sparsity": sparsity,
            "model": model,
            "gemm": list(gemm) if gemm is not None else None,
            "layers": _layers_signature(layers),
            "candidates": [
                {"name": spec.name, "kwargs": dict(spec.kwargs)} for spec in candidates
            ],
            "mode": mode,
            "refiner": refiner.to_dict() if refiner is not None else None,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


class PlanCache:
    """Persistent on-disk cache of :class:`TuningPlan` results.

    The same store substrate as the sweep result cache
    (:func:`repro.eval.store.make_store`): by default (``backend="blob"``) a
    content-addressed, multi-writer-safe blob root (``tuning-plans.blobs/``
    inside ``cache_dir``, one atomic canonical-JSON file per request digest)
    that reads through to — and migrates — the legacy single
    :data:`PLAN_FILENAME` file; ``backend="json"`` keeps the legacy
    single-file layout.  Each entry keeps the plan dict next to the request
    digest so the store is debuggable by eye.  Entries whose ``salt``
    disagrees with the cache's read as misses (the hash already guarantees
    this for new keys; the explicit check also invalidates hand-edited
    files).
    """

    def __init__(
        self,
        cache_dir: str | Path,
        *,
        salt: str = MODEL_VERSION,
        backend: str = "blob",
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.salt = salt
        self.backend = backend
        self._store: CacheStore = make_store(
            self.cache_dir / PLAN_FILENAME, backend=backend, salt=salt
        )
        self.path = self._store.path

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: str) -> TuningPlan | None:
        """The cached plan under ``key``, or ``None`` on a miss, an
        undecodable entry, or a salt (model-version) mismatch."""
        entry = self._store.get(key)
        if entry is None or "plan" not in entry:
            return None
        try:
            plan = TuningPlan.from_dict(entry["plan"])
        except (KeyError, TypeError, ValueError):
            return None
        if plan.salt != self.salt:
            return None
        return plan

    def put(self, key: str, plan: TuningPlan) -> None:
        """Stage ``plan`` under ``key`` (persisted on :meth:`flush`)."""
        self._store.put(key, {"plan": plan.to_dict()})

    def flush(self) -> None:
        """Persist staged plans atomically (unique temp + fsync + rename;
        one file per plan on the blob backend)."""
        self._store.flush()


@dataclass
class Autotuner:
    """Plans per-layer kernel assignments for whole workloads.

    ``candidates`` defaults to the full paper line-up; ``cache_dir`` enables
    the persistent :class:`PlanCache` (``store`` picks its substrate, blob
    by default); ``refiner`` switches planning to the measured-refinement
    mode.  ``batched`` (the default) scores each candidate over every
    feasible layer in one batched timing-model call
    (:func:`repro.eval.speedup.layer_times_grid`); the scalar path remains
    as the bit-identical oracle.  ``stats`` accumulates plan-cache
    hits/misses across the tuner's lifetime (same accounting class as the
    sweep runner).
    """

    candidates: tuple[KernelSpec, ...] = field(default_factory=default_candidates)
    cache_dir: str | Path | None = None
    salt: str = MODEL_VERSION
    refiner: Refiner | None = None
    batched: bool = True
    store: str = "blob"
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.candidates = tuple(self.candidates)
        if not self.candidates:
            raise ValueError("the autotuner needs at least one candidate kernel")
        self.cache = (
            PlanCache(self.cache_dir, salt=self.salt, backend=self.store)
            if self.cache_dir is not None
            else None
        )

    @property
    def mode(self) -> str:
        """Plan provenance: ``"measured"`` with a refiner, else ``"model"``."""
        return "measured" if self.refiner is not None else "model"

    # ------------------------------ planning ----------------------------- #
    def plan(
        self,
        model: str,
        gpu: str,
        sparsity: float,
        *,
        layers: Sequence[LayerShape] | None = None,
    ) -> TuningPlan:
        """Tune one named workload at one (GPU, sparsity) operating point.

        ``layers`` overrides the workload's default layer shapes (e.g. a
        different token batch); the plan cache keys on the actual shapes, so
        an override never aliases the default plan.
        """
        resolved = list(layers) if layers is not None else model_layers(model)
        return self._plan(resolved, gpu, sparsity, model=model)

    def plan_gemm(
        self, gemm: tuple[int, int, int], gpu: str, sparsity: float
    ) -> TuningPlan:
        """Tune a single explicit GEMM problem (the Figure 1 mode)."""
        shape = tuple(int(v) for v in gemm)
        return self._plan([gemm_layer(shape)], gpu, sparsity, gemm=shape)

    def _plan(
        self,
        layers: Sequence[LayerShape],
        gpu: str,
        sparsity: float,
        *,
        model: str | None = None,
        gemm: tuple[int, int, int] | None = None,
    ) -> TuningPlan:
        if not layers:
            raise ValueError("cannot plan an empty workload")
        if not 0.0 <= sparsity < 1.0:
            raise ValueError("sparsity must be in [0, 1)")
        key = plan_request_hash(
            gpu=gpu,
            sparsity=sparsity,
            layers=layers,
            candidates=self.candidates,
            mode=self.mode,
            refiner=self.refiner,
            model=model,
            gemm=gemm,
            salt=self.salt,
        )
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.hits += 1
                return cached
        self.stats.misses += 1

        arch = get_gpu(gpu)
        density = 1.0 - sparsity
        if self.batched:
            assignments = self._assign_layers_batched(arch, layers, density)
        else:
            assignments = tuple(
                self._assign_layer(arch, layer, density) for layer in layers
            )
        plan = TuningPlan(
            gpu=arch.name,
            sparsity=sparsity,
            assignments=assignments,
            model=model,
            gemm=gemm,
            mode=self.mode,
            salt=self.salt,
            candidates=tuple(spec.display_label for spec in self.candidates),
        )
        if self.cache is not None:
            self.cache.put(key, plan)
            self.cache.flush()
        return plan

    def _assign_layer(self, arch, layer: LayerShape, density: float) -> LayerAssignment:
        """Argmin of the timing model over the feasible candidates of one
        layer, scored one scalar estimate at a time (the batched path's
        oracle)."""
        # Imported here: repro.eval.speedup imports the runner this module
        # shares types with, and the experiment layer imports both.
        from ..eval.speedup import layer_time

        feasible, rejected = prune_candidates(self.candidates, arch, layer, density)
        scored: list[tuple[KernelSpec, object, float]] = []
        for spec, kernel in feasible:
            try:
                time_s = layer_time(
                    kernel, arch, layer, candidate_density(kernel, density)
                )
            except (KernelNotApplicableError, ValueError) as exc:
                # Dynamic (shape-dependent) inapplicability the static
                # capability stage cannot see.
                rejected[spec.display_label] = str(exc)
                continue
            scored.append((spec, kernel, time_s))
        return self._choose(arch, layer, density, scored, rejected)

    def _assign_layers_batched(
        self, arch, layers: Sequence[LayerShape], density: float
    ) -> tuple[LayerAssignment, ...]:
        """Assign every layer of a workload with batched candidate scoring.

        Each candidate is scored over all its feasible layers in a single
        :func:`~repro.eval.speedup.layer_times_grid` call (one batched
        timing-model evaluation instead of one scalar call per layer); the
        per-layer argmin, tie-breaking, rejection bookkeeping and refinement
        then replicate :meth:`_assign_layer` exactly, so the two paths
        produce identical plans.
        """
        from ..eval.speedup import layer_time, layer_times_grid

        scored_per_layer: list[list[tuple[KernelSpec, object, float]]] = [
            [] for _ in layers
        ]
        # Static rejects land before dynamic ones per layer, matching the
        # prune-then-score dict order of the scalar path.
        static_rejects: list[dict[str, str]] = [{} for _ in layers]
        dynamic_rejects: list[dict[str, str]] = [{} for _ in layers]
        for spec in self.candidates:
            kernel = build_kernel(spec)
            capabilities = kernel.capabilities()
            scored_density = candidate_density(kernel, density)
            feasible: list[int] = []
            for position, layer in enumerate(layers):
                reason = capabilities.infeasible_reason(
                    arch, kind=layer.kind, density=scored_density
                )
                if reason is None:
                    feasible.append(position)
                else:
                    static_rejects[position][spec.display_label] = reason
            if not feasible:
                continue
            try:
                times = layer_times_grid(
                    kernel, arch, [layers[p] for p in feasible], scored_density
                )
            except (KernelNotApplicableError, ValueError):
                # Some layer of this candidate fails dynamically; score the
                # layers one by one so the per-layer outcomes (and their
                # rejection reasons) match the scalar path exactly.
                for position in feasible:
                    try:
                        time_s = layer_time(
                            kernel, arch, layers[position], scored_density
                        )
                    except (KernelNotApplicableError, ValueError) as exc:
                        dynamic_rejects[position][spec.display_label] = str(exc)
                        continue
                    scored_per_layer[position].append((spec, kernel, time_s))
                continue
            for slot, position in enumerate(feasible):
                scored_per_layer[position].append((spec, kernel, float(times[slot])))
        return tuple(
            self._choose(
                arch,
                layer,
                density,
                scored_per_layer[position],
                {**static_rejects[position], **dynamic_rejects[position]},
            )
            for position, layer in enumerate(layers)
        )

    def _choose(
        self,
        arch,
        layer: LayerShape,
        density: float,
        scored: list[tuple[KernelSpec, object, float]],
        rejected: dict[str, str],
    ) -> LayerAssignment:
        """Pick the winning candidate for one layer from its scored pool
        (first-in-pool-order wins exact ties, so plans are stable)."""
        if not scored:
            raise KernelNotApplicableError(
                f"no feasible kernel for layer {layer.name!r} on {arch.name} "
                f"at density {density:g}: "
                + "; ".join(f"{label}: {why}" for label, why in rejected.items())
            )
        ranked = sorted(range(len(scored)), key=lambda i: (scored[i][2], i))
        ordered = [scored[i] for i in ranked]
        winner = 0
        if self.refiner is not None:
            winner = self.refiner.refine(ordered, layer, density)
        spec, _, time_s = ordered[winner]
        return LayerAssignment(
            layer=layer.name,
            kernel=spec.name,
            kernel_kwargs=spec.kwargs,
            label=spec.display_label,
            time_s=time_s,
            count=layer.count,
            considered=len(scored),
            pruned=len(self.candidates) - len(scored),
        )
