"""Autotuned kernel selection and execution planning.

Turns the repo from "compare kernels" into "automatically pick the winner
per layer": the :class:`Autotuner` scores every feasible candidate kernel of
every layer on the analytical timing model (optionally refined by measured
functional runs), emits a persistent, versioned :class:`TuningPlan`, and
:class:`PlannedModel` executes whole workloads through the plan.
"""

from .candidates import (
    build_kernel,
    candidate_density,
    default_candidates,
    prune_candidates,
)
from .measure import MeasuredRefiner
from .planned import (
    PlanComparison,
    PlannedModel,
    compare_with_single_kernels,
    single_kernel_spec,
)
from .planner import (
    PLAN_FILENAME,
    Autotuner,
    LayerAssignment,
    PlanCache,
    TuningPlan,
    gemm_layer,
    plan_request_hash,
)

__all__ = [
    "PLAN_FILENAME",
    "Autotuner",
    "LayerAssignment",
    "MeasuredRefiner",
    "PlanCache",
    "PlanComparison",
    "PlannedModel",
    "TuningPlan",
    "build_kernel",
    "candidate_density",
    "compare_with_single_kernels",
    "default_candidates",
    "gemm_layer",
    "plan_request_hash",
    "prune_candidates",
    "single_kernel_spec",
]
