"""Executing a workload through a :class:`~repro.tune.planner.TuningPlan`.

:class:`PlannedModel` is the execution side of a plan: it resolves the
planned workload's layer shapes, instantiates each layer's assigned kernel
once, and routes both the functional path (``matmul`` via the vectorized
SpMM engines) and the timing path (modelled per-layer and whole-model times)
through the per-layer assignments.

:func:`compare_with_single_kernels` is the evaluation harness: it prices
every candidate as a whole-model single-kernel baseline through the sweep
runner (so the results land in the same persistent sweep cache as Figure 6)
and reports the plan's aggregate speedup against the best of them and
against the dense baseline.  Because the planner takes a per-layer argmin
over the same candidate pool and the same timing model, an analytical
(model-mode) plan is never slower than the best single kernel — the gap is
exactly the per-layer win the paper's Figure 1 regions promise.  Measured-
refined plans may deliberately deviate from the modelled argmin, so the
invariant is not enforced for them.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..eval.runner import SweepRunner, SweepSpec
from ..kernels.base import SpMMKernel
from ..kernels.registry import DENSE_BASELINE_LABEL, make_kernel
from ..models.shapes import LayerShape, model_layers
from .candidates import default_candidates
from .planner import Autotuner, TuningPlan, gemm_layer

__all__ = [
    "PlannedModel",
    "PlanComparison",
    "single_kernel_spec",
    "compare_with_single_kernels",
]


class PlannedModel:
    """A workload bound to its tuning plan.

    ``layers`` overrides the layer shapes (it must match the names the plan
    was tuned for); by default they are re-derived from the plan's workload
    identifier.  Kernels are instantiated lazily, once per layer.
    """

    def __init__(self, plan: TuningPlan, *, layers: Sequence[LayerShape] | None = None):
        self.plan = plan
        if layers is None:
            if plan.model is not None:
                layers = model_layers(plan.model)
            else:
                layers = [gemm_layer(plan.gemm)]
        self.layers: dict[str, LayerShape] = {layer.name: layer for layer in layers}
        missing = [a.layer for a in plan.assignments if a.layer not in self.layers]
        if missing:
            raise ValueError(
                f"plan assigns layers absent from the workload: {missing}"
            )
        self._kernels: dict[str, SpMMKernel] = {}

    def kernel_for(self, layer: str) -> SpMMKernel:
        """The (cached) kernel instance assigned to one layer."""
        kernel = self._kernels.get(layer)
        if kernel is None:
            assignment = self.plan.assignment_for(layer)
            kernel = make_kernel(assignment.kernel, **dict(assignment.kernel_kwargs))
            self._kernels[layer] = kernel
        return kernel

    def matmul(
        self, layer: str, weight: np.ndarray, activations: np.ndarray, **kwargs
    ) -> np.ndarray:
        """Run one layer functionally through its assigned kernel.

        ``kwargs`` forward to the kernel's ``prepare`` (e.g. ``row_indices``
        for Shfl-BW's witness permutation).
        """
        return self.kernel_for(layer).matmul(weight, activations, **kwargs)

    @property
    def total_time_s(self) -> float:
        """Modelled whole-workload time under the plan."""
        return self.plan.total_time_s

    def layer_times(self) -> list[tuple[str, str, float]]:
        """``(layer, kernel label, total modelled time)`` per plan entry."""
        return [
            (a.layer, a.label, a.total_time_s) for a in self.plan.assignments
        ]


@dataclass(frozen=True)
class PlanComparison:
    """A plan priced against the single-kernel baselines of its grid cell."""

    plan: TuningPlan
    dense_time_s: float
    best_single_label: str
    best_single_time_s: float
    single_kernel_times: tuple[tuple[str, float], ...]

    @property
    def planned_time_s(self) -> float:
        """Modelled whole-model time under the plan."""
        return self.plan.total_time_s

    @property
    def planned_speedup(self) -> float:
        """Aggregate speedup of the plan over the dense baseline."""
        return self.dense_time_s / self.planned_time_s

    @property
    def best_single_speedup(self) -> float:
        """Speedup of the best whole-model single kernel over dense."""
        return self.dense_time_s / self.best_single_time_s

    @property
    def advantage(self) -> float:
        """How much faster the plan is than the best single kernel (>= 1)."""
        return self.best_single_time_s / self.planned_time_s


def single_kernel_spec(
    model: str,
    gpu: str,
    sparsity: float,
    candidates=None,
) -> SweepSpec:
    """The single-kernel baseline grid of one (model, GPU, sparsity) cell.

    Every non-dense candidate priced as a whole-model kernel, plus the dense
    baseline cell — one :class:`SweepSpec`, so baseline pricing shares the
    sweep runner's executor and persistent cache with Figure 6.
    """
    candidates = tuple(candidates) if candidates is not None else default_candidates()
    kernels = tuple(
        spec for spec in candidates if spec.display_label != DENSE_BASELINE_LABEL
    )
    return SweepSpec(
        kernels=kernels,
        gpus=(gpu,),
        sparsities=(sparsity,),
        models=(model,),
    )


def compare_with_single_kernels(
    model: str,
    gpu: str,
    sparsity: float,
    *,
    tuner: Autotuner | None = None,
    runner: SweepRunner | None = None,
) -> PlanComparison:
    """Tune one cell and price it against every single-kernel baseline.

    The dense baseline always participates in the "best single kernel"
    minimum: where no sparse kernel beats dense (the Figure 1 low-sparsity
    region) the comparison degrades gracefully instead of crowning a losing
    sparse kernel.
    """
    tuner = tuner if tuner is not None else Autotuner()
    runner = runner if runner is not None else SweepRunner()
    plan = tuner.plan(model, gpu, sparsity)

    spec = single_kernel_spec(model, gpu, sparsity, tuner.candidates)
    lookup = runner.run(spec).by_config()
    dense_time = lookup[spec.dense_config(model, gpu)].time_s
    times: list[tuple[str, float]] = [(DENSE_BASELINE_LABEL, dense_time)]
    for kernel in spec.kernels:
        record = lookup[spec.config(kernel, model, gpu, sparsity)]
        if record.ok:
            times.append((kernel.display_label, record.time_s))
    best_label, best_time = min(times, key=lambda pair: pair[1])
    return PlanComparison(
        plan=plan,
        dense_time_s=dense_time,
        best_single_label=best_label,
        best_single_time_s=best_time,
        single_kernel_times=tuple(times),
    )
