"""Candidate kernel enumeration and feasibility pruning for the autotuner.

The tuner searches over *kernel specs* — registry name plus constructor
kwargs, the same hashable form :mod:`repro.eval.runner` sweeps consume — not
over kernel instances.  The default pool is the full Figure 6 line-up
(including the dense baseline, so a plan can always fall back to dense when
no sparse kernel wins, exactly the Figure 1 low-sparsity region).

Pruning is two-staged:

* *static*: :meth:`repro.kernels.base.SpMMKernel.capabilities` rules out
  candidates from declarative metadata alone (wrong GPU, missing convolution
  support, fixed-density patterns at the wrong density) without touching the
  timing model;
* *dynamic*: anything the static stage cannot see still surfaces as
  :class:`~repro.kernels.base.KernelNotApplicableError` when the planner
  scores the survivors, and is treated as infeasible there.
"""

from __future__ import annotations

from ..eval.runner import KernelSpec
from ..gpu.arch import GPUArch
from ..kernels.base import SpMMKernel
from ..kernels.registry import make_kernel, paper_baseline_specs
from ..models.shapes import LayerShape

__all__ = [
    "default_candidates",
    "build_kernel",
    "candidate_density",
    "prune_candidates",
]


def default_candidates(vector_sizes: tuple[int, ...] = (32, 64)) -> tuple[KernelSpec, ...]:
    """The default candidate pool: the paper's full kernel line-up.

    Returned in the deterministic Figure 6 legend order; the planner breaks
    exact ties by this order, so plans are reproducible.
    """
    return tuple(
        KernelSpec(name=name, kwargs=tuple(sorted(kwargs.items())), label=label)
        for label, (name, kwargs) in paper_baseline_specs(tuple(vector_sizes)).items()
    )


def build_kernel(spec: KernelSpec) -> SpMMKernel:
    """Instantiate the kernel a spec describes."""
    return make_kernel(spec.name, **dict(spec.kwargs))


def candidate_density(kernel: SpMMKernel, density: float) -> float:
    """The density a candidate is scored at.

    Dense kernels ignore weight sparsity — they always run the full GEMM —
    so they are timed at density 1.0 regardless of the operating point,
    matching the sweep runner's sparsity-0 dense baseline cells.
    """
    return 1.0 if kernel.capabilities().is_dense else density


def prune_candidates(
    candidates: tuple[KernelSpec, ...],
    arch: GPUArch,
    layer: LayerShape,
    density: float,
) -> tuple[list[tuple[KernelSpec, SpMMKernel]], dict[str, str]]:
    """Split a candidate pool into statically feasible kernels and rejects.

    Returns ``(feasible, rejected)`` where ``feasible`` preserves pool order
    as ``(spec, kernel)`` pairs and ``rejected`` maps each pruned candidate's
    display label to the reason it cannot run this ``(arch, layer, density)``
    cell.
    """
    feasible: list[tuple[KernelSpec, SpMMKernel]] = []
    rejected: dict[str, str] = {}
    for spec in candidates:
        kernel = build_kernel(spec)
        caps = kernel.capabilities()
        reason = caps.infeasible_reason(
            arch, kind=layer.kind, density=candidate_density(kernel, density)
        )
        if reason is None:
            feasible.append((spec, kernel))
        else:
            rejected[spec.display_label] = reason
    return feasible, rejected
