"""Measured-run refinement for the autotuner.

The analytical timing model decides the *shortlist*; this module optionally
re-ranks the shortlist by actually running each candidate's functional
(numpy, vectorized) SpMM engine on a downscaled probe problem and timing the
wall clock.  That catches constant factors the analytical model abstracts
away (format conversion cost, gather friendliness of the compressed layout)
at the price of determinism — measured plans depend on the machine they were
tuned on, which is why :class:`~repro.tune.planner.TuningPlan` records its
``mode`` and the plan cache hashes the refiner settings into the key.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..eval.runner import KernelSpec
from ..kernels.base import SpMMKernel
from ..models.shapes import LayerShape

__all__ = ["MeasuredRefiner", "RecordedRefiner", "Refiner"]


def _round_to(value: int, multiple: int, *, lo: int, hi: int) -> int:
    """Clamp ``value`` to ``[lo, hi]`` and round down to a multiple."""
    clamped = max(lo, min(hi, value))
    return max(multiple, (clamped // multiple) * multiple)


@dataclass(frozen=True)
class MeasuredRefiner:
    """Re-ranks the analytical top-``k`` by measured functional wall time.

    Probe problems are the layer's GEMM shape downscaled to at most
    ``max_dim`` per dimension (rounded to multiples of 64 so every vector /
    block size in the default pool divides evenly), with an unstructured
    random mask at the operating density.  Each candidate is warmed up once
    (so ``prepare`` compression is excluded, as in inference) and timed as
    the best of ``repeats`` runs.
    """

    top_k: int = 2
    max_dim: int = 256
    repeats: int = 3
    seed: int = 1234

    def to_dict(self) -> dict:
        """Canonical form hashed into the plan-cache key."""
        return {
            "top_k": self.top_k,
            "max_dim": self.max_dim,
            "repeats": self.repeats,
            "seed": self.seed,
        }

    def probe_shape(self, layer: LayerShape) -> tuple[int, int, int]:
        """Downscaled ``(m, n, k)`` probe of one layer."""
        gemm = layer.gemm
        return (
            _round_to(gemm.m, 64, lo=64, hi=self.max_dim),
            _round_to(gemm.n, 16, lo=16, hi=self.max_dim),
            _round_to(gemm.k, 64, lo=64, hi=self.max_dim),
        )

    def probe_operands(
        self, layer: LayerShape, density: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic (weight, activations) probe pair for one layer."""
        m, n, k = self.probe_shape(layer)
        rng = np.random.default_rng(self.seed)
        weight = rng.normal(size=(m, k))
        if density < 1.0:
            # Unstructured mask: every pattern kernel re-compresses it into
            # its own format inside ``prepare`` (dropping values its pattern
            # cannot keep), so one probe serves the whole shortlist.
            weight *= rng.random((m, k)) < density
        activations = rng.normal(size=(k, n))
        return weight, activations

    def measure(
        self,
        kernel: SpMMKernel,
        layer: LayerShape,
        density: float,
    ) -> float | None:
        """Best-of-``repeats`` wall time of one candidate, ``None`` on failure.

        A candidate whose functional engine cannot run the probe (pattern
        constraint the static pruning did not see) simply keeps its
        analytical rank instead of aborting the plan.
        """
        weight, activations = self.probe_operands(layer, density)
        try:
            prepared = kernel.prepare_cached(weight)
            kernel.run(prepared, activations)  # warm-up, excluded from timing
            best = float("inf")
            for _ in range(self.repeats):
                start = time.perf_counter()
                kernel.run(prepared, activations)
                best = min(best, time.perf_counter() - start)
        except Exception:
            return None
        return best

    def refine(
        self,
        scored: list[tuple[KernelSpec, SpMMKernel, float]],
        layer: LayerShape,
        density: float,
    ) -> int:
        """Index (into ``scored``) of the refined winner.

        ``scored`` is the feasible candidate list ordered by analytical time
        (best first).  The analytical top-``k`` is re-measured; candidates
        that fail to measure fall back to their analytical rank, and when
        nothing measures the analytical winner stands.
        """
        shortlist = scored[: max(1, self.top_k)]
        measured: list[tuple[float, int]] = []
        for index, (_, kernel, _) in enumerate(shortlist):
            wall = self.measure(kernel, layer, density)
            if wall is not None:
                measured.append((wall, index))
        if not measured:
            return 0
        return min(measured)[1]


@dataclass(frozen=True)
class RecordedRefiner:
    """Re-ranks candidates by times *recorded during serving*.

    The online half of the refinement story (ROADMAP's plan-lifecycle
    direction): :meth:`repro.serve.service.InferenceService.recorded_refiner`
    exports the measured per-layer batch times — re-scaled to the timing
    model's clock through the service's calibration factors — and a re-plan
    with this refiner folds them back into candidate selection.  A candidate
    whose ``(layer, label)`` pair was served keys on its recorded time;
    candidates that never served keep their analytical estimate, so the
    recorded evidence can only displace the modelled winner where real
    traffic contradicts the model.

    ``records`` maps ``(layer name, candidate display label)`` to seconds on
    the timing model's clock.  The class is a frozen dataclass with a
    canonical ``to_dict`` so — like :class:`MeasuredRefiner` — it hashes
    into the plan-cache key and a changed recording reads as a cold plan.
    """

    records: tuple[tuple[tuple[str, str], float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "records",
            tuple(
                ((str(layer), str(label)), float(seconds))
                for (layer, label), seconds in self.records
            ),
        )

    def to_dict(self) -> dict:
        """Canonical form hashed into the plan-cache key."""
        return {
            "recorded": [
                [layer, label, seconds]
                for (layer, label), seconds in sorted(self.records)
            ],
        }

    def recorded_time(self, layer: str, label: str) -> float | None:
        """The recorded seconds of one ``(layer, label)`` pair, if any."""
        for key, seconds in self.records:
            if key == (layer, label):
                return seconds
        return None

    def refine(
        self,
        scored: list[tuple[KernelSpec, SpMMKernel, float]],
        layer: LayerShape,
        density: float,
    ) -> int:
        """Index (into ``scored``) of the winner under recorded evidence.

        Argmin over hybrid keys: recorded time where the pair served,
        analytical time otherwise; ties keep the analytical order (stable
        plans, same convention as the planner's ``_choose``).
        """
        keyed = [
            (
                self.recorded_time(layer.name, spec.display_label),
                analytical,
                index,
            )
            for index, (spec, _, analytical) in enumerate(scored)
        ]
        return min(
            keyed,
            key=lambda entry: (
                entry[1] if entry[0] is None else entry[0],
                entry[2],
            ),
        )[2]


#: What the planner accepts as a refinement hook: anything with the
#: ``refine(scored, layer, density) -> int`` + canonical ``to_dict`` shape.
Refiner = MeasuredRefiner | RecordedRefiner
