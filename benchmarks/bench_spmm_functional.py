"""Host-side throughput of the functional (numpy) kernels.

These benchmarks time the *reference implementations* (the correctness halves
of the kernels), not the modelled GPU times — they document the cost of the
Python substrate itself and catch accidental complexity regressions in the
format conversions and SpMM loops.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pruning import prune_shflbw
from repro.kernels.registry import make_kernel
from repro.sparse.convert import dense_to_csr, dense_to_shflbw
from repro.sparse.spmm import dense_gemm, spmm_csr, spmm_shflbw

M, K, N = 256, 256, 64
SPARSITY = 0.75
V = 32


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(0)
    weight = rng.normal(size=(M, K))
    activations = rng.normal(size=(K, N))
    pruned, result = prune_shflbw(weight, sparsity=SPARSITY, vector_size=V)
    return weight, activations, pruned, result


def test_bench_dense_gemm(benchmark, problem):
    weight, activations, _, _ = problem
    out = benchmark(dense_gemm, weight, activations)
    assert out.shape == (M, N)


def test_bench_shflbw_spmm(benchmark, problem):
    _, activations, pruned, result = problem
    sparse = dense_to_shflbw(pruned, V, result.row_indices)
    out = benchmark(spmm_shflbw, sparse, activations)
    np.testing.assert_allclose(out, pruned @ activations, atol=1e-10)


def test_bench_csr_spmm(benchmark, problem):
    _, activations, pruned, _ = problem
    csr = dense_to_csr(pruned)
    out = benchmark(spmm_csr, csr, activations)
    np.testing.assert_allclose(out, pruned @ activations, atol=1e-10)


def test_bench_pattern_search(benchmark, problem):
    weight, _, _, _ = problem
    result = benchmark(prune_shflbw, weight, SPARSITY, V)
    assert result[1].density == pytest.approx(1.0 - SPARSITY, abs=0.05)


def test_bench_shflbw_compression(benchmark, problem):
    _, _, pruned, result = problem
    sparse = benchmark(dense_to_shflbw, pruned, V, result.row_indices)
    assert sparse.nnz > 0


def test_bench_kernel_estimate(benchmark):
    from repro.gpu.arch import get_gpu
    from repro.kernels.base import GEMMShape

    kernel = make_kernel("shfl-bw", vector_size=64)
    timing = benchmark(kernel.estimate, get_gpu("A100"), GEMMShape(4096, 256, 1024), 0.25)
    assert timing.total_time_s > 0
