"""Ablation: metadata prefetching (Section 4.4).

Algorithm 1 bulk-prefetches the sparse metadata (column indices) so the
in-buffer stitching never waits on the index stream.  The ablation compares
the Shfl-BW kernel with and without prefetching across sparsity levels.
"""

from __future__ import annotations

import pytest

from repro.eval.speedup import model_time
from repro.gpu.arch import get_gpu
from repro.kernels.shflbw import ShflBWKernel
from repro.models.shapes import gnmt_layers

ARCH = get_gpu("T4")
LAYERS = gnmt_layers()


def times_at(density: float) -> dict[str, float]:
    with_prefetch = ShflBWKernel(vector_size=32, prefetch_metadata=True)
    without = ShflBWKernel(vector_size=32, prefetch_metadata=False)
    return {
        "prefetch": model_time(with_prefetch, ARCH, LAYERS, density),
        "no-prefetch": model_time(without, ARCH, LAYERS, density),
    }


def test_prefetch_ablation(benchmark):
    result = benchmark.pedantic(times_at, args=(0.25,), rounds=1, iterations=1)
    print()
    for name, value in result.items():
        print(f"  {name:<12} {value * 1e3:8.3f} ms")
    print(f"  prefetch saves {(1 - result['prefetch'] / result['no-prefetch']) * 100:.1f}%")


@pytest.mark.parametrize("density", [0.5, 0.25, 0.15, 0.05])
def test_prefetch_never_slower(density):
    result = times_at(density)
    assert result["prefetch"] <= result["no-prefetch"] * 1.001


def test_prefetch_matters_more_at_high_sparsity():
    """Metadata is a larger fraction of the traffic when the weights are very
    sparse, so the prefetch benefit grows with sparsity."""
    low = times_at(0.5)
    high = times_at(0.05)
    gain_low = low["no-prefetch"] / low["prefetch"]
    gain_high = high["no-prefetch"] / high["prefetch"]
    assert gain_high >= gain_low * 0.999
