"""Figure 6 + Section 6.2 headline: speedup over the dense tensor-core
baseline for the three workloads on V100 / T4 / A100 across the paper's
sparsity grid, for every kernel in the line-up.

Runs on the :mod:`repro.eval.runner` sweep runner; also exercises the
process-pool executor (records must be identical to the serial run) and the
persistent result cache (a warm re-run must be nearly all hits).
"""

from __future__ import annotations

import pytest

from repro.eval.runner import SweepRunner, serial_executor
from repro.eval.speedup import (
    PAPER_GPUS,
    PAPER_SPARSITIES,
    figure6_spec,
    figure6_sweep,
    headline_speedups,
)

#: Paper headline numbers (Transformer GEMM layers, 75 % sparsity).
PAPER_HEADLINE = {"V100": 1.81, "T4": 4.18, "A100": 1.90}


@pytest.fixture(scope="module")
def transformer_results():
    return figure6_sweep(models=("transformer",), gpus=PAPER_GPUS, sparsities=PAPER_SPARSITIES)


def test_figure6_transformer_sweep(benchmark):
    result = benchmark.pedantic(
        figure6_sweep,
        kwargs={"models": ("transformer",), "gpus": PAPER_GPUS, "sparsities": PAPER_SPARSITIES},
        rounds=1,
        iterations=1,
    )
    print()
    for (model, gpu), per_kernel in result.items():
        print(f"--- {model} on {gpu} (speedup over dense)")
        for label, by_sparsity in per_kernel.items():
            cells = "  ".join(
                f"{s:.0%}:{'-' if by_sparsity[s] is None else format(by_sparsity[s], '.2f')}"
                for s in PAPER_SPARSITIES
            )
            print(f"  {label:<24} {cells}")


def test_figure6_gnmt_resnet_sweep(benchmark):
    result = benchmark.pedantic(
        figure6_sweep,
        kwargs={"models": ("gnmt", "resnet50"), "gpus": ("V100",), "sparsities": (0.75, 0.95)},
        rounds=1,
        iterations=1,
    )
    for (model, gpu), per_kernel in result.items():
        assert per_kernel["Shfl-BW,V=64"][0.75] is not None
        assert per_kernel["Shfl-BW,V=64"][0.75] > 1.0


def test_figure6_parallel_matches_serial(benchmark):
    """The process-pool executor must reproduce the serial records exactly
    (same floats, same order) — parallelism only moves the computation."""
    spec = figure6_spec(models=("transformer", "resnet50"), gpus=PAPER_GPUS)
    serial = SweepRunner(executor=serial_executor).run(spec)
    parallel_result = benchmark.pedantic(
        SweepRunner(jobs=4).run, args=(spec,), rounds=1, iterations=1
    )
    assert parallel_result.records == serial.records


def test_figure6_cache_warm_rerun(benchmark, tmp_path):
    """A warm re-run against the persistent cache must be >= 90% hits and
    faster than the cold run that populated it."""
    spec = figure6_spec()
    cold = SweepRunner(cache_dir=tmp_path).run(spec)
    assert cold.cache_misses == len({c.config_hash() for c in spec.expand()})
    warm = benchmark.pedantic(
        SweepRunner(cache_dir=tmp_path).run, args=(spec,), rounds=1, iterations=1
    )
    assert warm.hit_rate >= 0.90
    assert warm.records == cold.records
    assert warm.elapsed_s < cold.elapsed_s
    print(
        f"\n  cold: {cold.elapsed_s * 1e3:.1f} ms ({cold.cache_misses} computed)  "
        f"warm: {warm.elapsed_s * 1e3:.1f} ms ({warm.cache_hits} hits, "
        f"{warm.hit_rate:.0%})"
    )


def test_headline_speedups_match_paper_ballpark(benchmark):
    """Paper: 1.81x / 4.18x / 1.90x on V100 / T4 / A100 at 75 % sparsity.
    The analytical substrate is expected to land within ~2x of those factors
    while preserving 'sparse wins clearly on every GPU'."""
    measured = benchmark.pedantic(headline_speedups, rounds=1, iterations=1)
    print()
    for gpu in PAPER_GPUS:
        print(f"  {gpu}: measured {measured[gpu]:.2f}x  paper {PAPER_HEADLINE[gpu]:.2f}x")
        assert measured[gpu] > 1.3
        assert measured[gpu] < PAPER_HEADLINE[gpu] * 2.5


def test_speedup_increases_with_sparsity(transformer_results):
    for gpu in PAPER_GPUS:
        per_kernel = transformer_results[("transformer", gpu)]
        series = [per_kernel["Shfl-BW,V=64"][s] for s in (0.50, 0.75, 0.85)]
        assert series[0] < series[1] <= series[2] * 1.05


def test_shflbw_tracks_vector_wise(transformer_results):
    """Section 6.2: Shfl-BW is within 0.97-1.02x of our vector-wise kernel."""
    for gpu in PAPER_GPUS:
        per_kernel = transformer_results[("transformer", gpu)]
        for sparsity in PAPER_SPARSITIES:
            vw = per_kernel["VW,V=64"][sparsity]
            sb = per_kernel["Shfl-BW,V=64"][sparsity]
            assert 0.95 <= sb / vw <= 1.05


def test_unstructured_never_beats_dense(transformer_results):
    for gpu in PAPER_GPUS:
        per_kernel = transformer_results[("transformer", gpu)]
        for sparsity in PAPER_SPARSITIES:
            assert per_kernel["Unstructured (Sputnik)"][sparsity] < 1.0
            assert per_kernel["Unstructured cuSPARSE"][sparsity] < 1.0


def test_balanced_2in4_only_on_a100_at_50_percent(transformer_results):
    for gpu in PAPER_GPUS:
        per_kernel = transformer_results[("transformer", gpu)]
        value = per_kernel["Balanced 2in4"][0.50]
        if gpu == "A100":
            assert value is not None and 1.0 < value < 2.0
        else:
            assert value is None
        assert per_kernel["Balanced 2in4"][0.75] is None


def test_vectorsparse_and_tilewise_below_ours_on_v100(transformer_results):
    per_kernel = transformer_results[("transformer", "V100")]
    for sparsity in (0.75, 0.85):
        ours = per_kernel["Shfl-BW,V=32"][sparsity]
        assert per_kernel["VectorSparse (VW,V=8)"][sparsity] < ours
        assert per_kernel["TileWise (VW,V=128)"][sparsity] < 1.0
