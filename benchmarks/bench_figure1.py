"""Figure 1: SpMM throughput vs density on the Figure-1 GEMM shape
(M/N/K = 2048/128/2048, V100), normalised to the CUDA-core dense GEMM.

Regenerates the four curves of the figure on the :mod:`repro.eval.runner`
sweep runner and checks the qualitative relationships the paper draws from
it (regions A/B/C), plus the runner's serial/parallel and cache contracts
on this grid.
"""

from __future__ import annotations

import pytest

from repro.eval.runner import SweepRunner, serial_executor
from repro.eval.speedup import figure1_spec, spmm_throughput_sweep

DENSITIES = (0.02, 0.05, 0.10, 0.15, 0.25, 0.35, 0.50)


@pytest.fixture(scope="module")
def curves():
    return spmm_throughput_sweep(densities=DENSITIES)


def test_figure1_sweep(benchmark):
    result = benchmark.pedantic(
        spmm_throughput_sweep, kwargs={"densities": DENSITIES}, rounds=1, iterations=1
    )
    print()
    header = f"{'density':>8} " + " ".join(f"{name:>26}" for name in result)
    print(header)
    for density in DENSITIES:
        row = f"{density:>8.2f} " + " ".join(f"{result[name][density]:>26.2f}" for name in result)
        print(row)


def test_figure1_parallel_and_cache_roundtrip(benchmark, tmp_path, curves):
    """Parallel execution and a cache round-trip must both reproduce the
    serial curves exactly."""
    parallel = spmm_throughput_sweep(
        densities=DENSITIES, runner=SweepRunner(jobs=2)
    )
    assert parallel == curves
    spec = figure1_spec(densities=DENSITIES)
    SweepRunner(cache_dir=tmp_path, executor=serial_executor).run(spec)
    warm_runner = SweepRunner(cache_dir=tmp_path)
    warm = benchmark.pedantic(
        spmm_throughput_sweep,
        kwargs={"densities": DENSITIES, "runner": warm_runner},
        rounds=1,
        iterations=1,
    )
    assert warm == curves
    assert warm_runner.stats.hit_rate >= 0.90


def test_tensor_core_dense_above_cuda_core_dense(curves):
    for density in DENSITIES:
        assert curves["Tensor-Core"][density] > 1.3


def test_region_a_cuda_sparse_needs_high_sparsity(curves):
    """Region A: CUDA-core sparse only beats CUDA-core dense at high sparsity
    (paper: ~65 %; the analytical model lands in the 65-90 % range)."""
    assert curves["Cuda-Core Sparse"][0.50] < 1.0
    assert curves["Cuda-Core Sparse"][0.02] > 1.0


def test_region_b_cuda_sparse_vs_tensor_dense(curves):
    """Region B: CUDA-core sparse only beats the tensor-core dense GEMM at
    extreme sparsity (paper: ~95 %)."""
    tc = curves["Tensor-Core"]
    cc_sparse = curves["Cuda-Core Sparse"]
    assert cc_sparse[0.25] < tc[0.25]
    assert cc_sparse[0.02] > tc[0.02]


def test_region_c_tensor_sparse_lowers_threshold(curves):
    """Region C: our tensor-core sparse kernel beats the tensor-core dense
    baseline at far lower sparsity than CUDA-core sparse kernels do."""
    tc = curves["Tensor-Core"]
    ours = curves["Tensor-Core Sparse (Ours)"]
    assert ours[0.25] > tc[0.25]
    assert ours[0.50] > 1.0  # already above the CUDA-core dense reference


def test_tensor_sparse_throughput_monotone_in_sparsity(curves):
    ours = curves["Tensor-Core Sparse (Ours)"]
    ordered = [ours[d] for d in sorted(DENSITIES, reverse=True)]
    assert ordered[-1] >= ordered[0]
