#!/usr/bin/env python
"""Cold/warm benchmark and perf gate for the staticcheck cache layer.

Runs ``repro.staticcheck`` over the full repo tree twice against one
``--cache-dir``: the cold run pays for parsing, the effect scanner, both
fixpoints and every rule; the warm run must be served by the content-hash
keyed parse/summary/findings caches.  The gate (``--max-warm-s``, default
2 s) fails the build when a warm unchanged-tree run regresses past the
bar — the property that makes the linter cheap enough for CI and
pre-commit hooks.

Correctness rides along: the warm report must be byte-identical to the
cold one (a cache that changes findings is worse than no cache).
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import tempfile
import time
from contextlib import redirect_stdout
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.staticcheck import main as staticcheck_main  # noqa: E402


def run_once(paths: list[str], cache_dir: Path) -> tuple[int, dict, float]:
    out = io.StringIO()
    began = time.perf_counter()
    with redirect_stdout(out):
        code = staticcheck_main(
            [*paths, "--format", "json", "--cache-dir", str(cache_dir)]
        )
    elapsed = time.perf_counter() - began
    return code, json.loads(out.getvalue()), elapsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paths",
        nargs="*",
        default=[str(REPO / "src"), str(REPO / "tests")],
        help="trees to lint (default: the repo's src and tests)",
    )
    parser.add_argument(
        "--max-warm-s",
        type=float,
        default=2.0,
        help="fail if the best warm run exceeds this many seconds",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="warm runs to take the best of"
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=REPO / "BENCH_staticcheck.json",
        help="where to write the measured numbers",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="staticcheck-bench-") as tmp:
        cache_dir = Path(tmp) / "cache"
        cold_code, cold_report, cold_s = run_once(args.paths, cache_dir)
        warm_times: list[float] = []
        for _ in range(max(1, args.repeats)):
            warm_code, warm_report, warm_s = run_once(args.paths, cache_dir)
            warm_times.append(warm_s)
            if warm_code != cold_code or warm_report != cold_report:
                print("FAIL: warm cached report differs from the cold one")
                return 1
        best_warm = min(warm_times)

    speedup = cold_s / best_warm if best_warm > 0 else float("inf")
    numbers = {
        "files_scanned": cold_report["files_scanned"],
        "findings": len(cold_report["findings"]),
        "suppressed": cold_report["suppressed"],
        "cold_s": round(cold_s, 3),
        "warm_s": round(best_warm, 3),
        "warm_runs": [round(t, 3) for t in warm_times],
        "speedup": round(speedup, 2),
        "max_warm_s": args.max_warm_s,
    }
    args.json.write_text(json.dumps(numbers, indent=2) + "\n", encoding="utf-8")
    print(
        f"staticcheck over {numbers['files_scanned']} files: "
        f"cold {cold_s:.2f}s, warm {best_warm:.2f}s "
        f"({speedup:.1f}x), gate {args.max_warm_s:.1f}s"
    )
    if cold_code not in (0, 1):
        print(f"FAIL: staticcheck exited {cold_code} (usage error)")
        return 1
    if best_warm > args.max_warm_s:
        print(
            f"FAIL: warm cached run took {best_warm:.2f}s "
            f"(> {args.max_warm_s:.1f}s); the cache layer regressed"
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
