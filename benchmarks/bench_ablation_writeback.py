"""Ablation: reordered write-back (Section 4.2).

The paper's claim: handling the row shuffle with a fused reordered write-back
makes Shfl-BW essentially free (0.97-1.02x of plain vector-wise).  The
ablation compares three kernels on the Transformer GEMM shapes:

* our vector-wise kernel (no shuffle at all),
* Shfl-BW with the fused reordered write-back (the paper's design),
* Shfl-BW without it (separate permutation pass over the output).
"""

from __future__ import annotations

import pytest

from repro.eval.speedup import model_time
from repro.gpu.arch import get_gpu
from repro.kernels.shflbw import ShflBWKernel
from repro.kernels.vector_wise import VectorWiseKernel
from repro.models.shapes import transformer_layers

ARCH = get_gpu("V100")
LAYERS = transformer_layers()
DENSITY = 0.25


@pytest.fixture(scope="module")
def times():
    return {
        "vector-wise": model_time(VectorWiseKernel(vector_size=64), ARCH, LAYERS, DENSITY),
        "shfl-bw (fused write-back)": model_time(
            ShflBWKernel(vector_size=64, reordered_write_back=True), ARCH, LAYERS, DENSITY
        ),
        "shfl-bw (separate pass)": model_time(
            ShflBWKernel(vector_size=64, reordered_write_back=False), ARCH, LAYERS, DENSITY
        ),
    }


def test_writeback_ablation(benchmark, times):
    benchmark.pedantic(
        model_time,
        args=(ShflBWKernel(vector_size=64), ARCH, LAYERS, DENSITY),
        rounds=1,
        iterations=1,
    )
    print()
    base = times["vector-wise"]
    for name, value in times.items():
        print(f"  {name:<28} {value * 1e3:8.3f} ms  ({value / base:.3f}x of vector-wise)")


def test_fused_writeback_is_essentially_free(times):
    ratio = times["shfl-bw (fused write-back)"] / times["vector-wise"]
    assert 0.97 <= ratio <= 1.05


def test_separate_permutation_pass_costs_measurably_more(times):
    assert times["shfl-bw (separate pass)"] > times["shfl-bw (fused write-back)"] * 1.03
