#!/usr/bin/env python
"""Seed-vs-vectorized wall time of the Shfl-BW pattern-search engine.

Runs :func:`repro.core.pruning.search_shflbw_pattern` (the vectorized
engine) against the seed loop implementation preserved in
:mod:`repro.core.reference` on a GNMT-scale search — the 4096 x 1024 LSTM
gate matrix at V=64, where the seed walks ~260k sorted distance pairs per
Lloyd step in a Python loop and materialises a 2 GiB ``(n, k, K)`` distance
intermediate.  Asserts the two engines produce *bit-identical* masks,
witness permutations and groups, and that the vectorized engine clears
``--min-speedup`` (default 5x; ~15-20x measured locally).

Also times the two satellite vectorizations (``vector_wise_mask`` and
``group_rows_by_support``) as informational rows with exact-equality
asserts.

Run standalone::

    python benchmarks/bench_pattern_search.py
    python benchmarks/bench_pattern_search.py --smoke  # CI test job
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass

import numpy as np

from repro.core import reference as ref
from repro.core.pruning import search_shflbw_pattern, unstructured_mask, vector_wise_mask
from repro.core.transforms import group_rows_by_support


@dataclass
class BenchResult:
    stage: str
    seed_s: float
    vectorized_s: float
    gated: bool  # whether this row is held to the --min-speedup bar

    @property
    def speedup(self) -> float:
        return self.seed_s / self.vectorized_s if self.vectorized_s > 0 else float("inf")


def _time(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _assert_groups_equal(a, b) -> None:
    assert len(a) == len(b), "group counts differ"
    for got, want in zip(a, b):
        np.testing.assert_array_equal(got, want)


def run(
    m: int,
    k: int,
    vector_size: int,
    density: float,
    kmeans_iters: int,
    seed: int,
) -> list[BenchResult]:
    rng = np.random.default_rng(seed)
    scores = np.abs(rng.normal(size=(m, k)))
    results: list[BenchResult] = []

    # --- the full two-stage search (the gated headline row) ---------------- #
    new_s, new_result = _time(
        lambda: search_shflbw_pattern(
            scores, density, vector_size, kmeans_iters=kmeans_iters, seed=seed
        )
    )
    old_s, old_result = _time(
        lambda: ref.search_shflbw_pattern_loop(
            scores, density, vector_size, kmeans_iters=kmeans_iters, seed=seed
        )
    )
    np.testing.assert_array_equal(new_result.mask, old_result.mask)
    np.testing.assert_array_equal(new_result.row_indices, old_result.row_indices)
    assert new_result.groups == old_result.groups, "row groups differ"
    assert new_result.retained_score == old_result.retained_score
    results.append(BenchResult("search_shflbw_pattern", old_s, new_s, gated=True))

    # --- satellite stages (exact-equality asserts, informational) ---------- #
    new_s, new_mask = _time(lambda: vector_wise_mask(scores, density, vector_size))
    old_s, old_mask = _time(lambda: ref.vector_wise_mask_loop(scores, density, vector_size))
    np.testing.assert_array_equal(new_mask, old_mask)
    results.append(BenchResult("vector_wise_mask", old_s, new_s, gated=False))

    coarse = unstructured_mask(scores, min(1.0, 2.0 * density))
    new_s, new_groups = _time(lambda: group_rows_by_support(coarse, vector_size))
    old_s, old_groups = _time(lambda: ref.group_rows_by_support_loop(coarse, vector_size))
    _assert_groups_equal(new_groups, old_groups)
    results.append(BenchResult("group_rows_by_support", old_s, new_s, gated=False))
    return results


def report(results: list[BenchResult]) -> str:
    lines = [
        f"{'stage':<24} {'seed (s)':>10} {'vectorized (s)':>15} {'speedup':>9}",
        "-" * 62,
    ]
    for r in results:
        lines.append(
            f"{r.stage:<24} {r.seed_s:>10.3f} {r.vectorized_s:>15.3f} {r.speedup:>8.1f}x"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--m", type=int, default=4096, help="rows (GNMT LSTM gate M)")
    parser.add_argument("--k", type=int, default=1024, help="columns (GNMT hidden K)")
    parser.add_argument("--vector-size", type=int, default=64)
    parser.add_argument("--density", type=float, default=0.25)
    parser.add_argument("--kmeans-iters", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required vectorized-over-seed speedup for the full search",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small problem, bit-identity asserts only (for CI runners)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.m, args.k = 256, 128
        args.vector_size = 16
        args.kmeans_iters = 2
        args.min_speedup = 0.0

    results = run(
        m=args.m,
        k=args.k,
        vector_size=args.vector_size,
        density=args.density,
        kmeans_iters=args.kmeans_iters,
        seed=args.seed,
    )
    print(
        f"Shfl-BW pattern search, seed vs vectorized  (M={args.m} K={args.k} "
        f"V={args.vector_size} density={args.density:.0%}, "
        f"{args.kmeans_iters} Lloyd iters)"
    )
    print(report(results))

    failures = [
        r for r in results if r.gated and args.min_speedup > 0 and r.speedup < args.min_speedup
    ]
    if failures:
        for r in failures:
            print(
                f"FAIL: {r.stage} speedup {r.speedup:.1f}x is below the "
                f"{args.min_speedup:.1f}x bar",
                file=sys.stderr,
            )
        return 1
    print(
        "masks, permutations and groups are bit-identical"
        + ("" if args.min_speedup <= 0 else "; speedup bar met")
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
