#!/usr/bin/env python
"""Micro-batched serving vs the batch-size-1 serial baseline.

Two gates over ``repro.serve``:

* *byte-identity*: replaying the same request stream serially and across a
  process pool must produce byte-identical outputs (the repo-wide
  determinism contract, extended to serving);
* *throughput*: the live service with timing-model-planned micro-batching
  must reach at least ``--min-speedup`` times the request rate of the same
  service forced to batch-size-1 serial dispatch, at the same worker count;
* *fault recovery*: the same micro-batched run with one worker killed
  mid-stream (a deterministic ``FaultPlan``) must lose zero requests and
  still clear the ``--min-speedup`` bar — crash recovery costs a respawn,
  not the stream.

Both modes run the identical closed-loop protocol — every request submitted
up front, the service drained to completion — so the measured difference is
purely the coalescing policy.  The measurements (p50/p99 latency, req/s per
mode, the speedup) land in ``BENCH_serve.json``; perf-smoke CI enforces the
gates and uploads the JSON as an artifact.

Run standalone (after ``pip install -e .``)::

    python benchmarks/bench_serve.py
    python benchmarks/bench_serve.py --smoke           # identity gate only
    python benchmarks/bench_serve.py --min-speedup 2   # the CI bar
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import warnings
from pathlib import Path

import numpy as np

from repro.eval.runner import MODEL_VERSION
from repro.serve import (
    FaultPlan,
    FaultSpec,
    InferenceService,
    PoolStompedWarning,
    PredictRequest,
)
from repro.tune import Autotuner

#: The benchmarked operating point: a decode-style skinny-activation GEMM
#: where coalescing pays (the planned kernel amortises its per-launch weight
#: traffic over the batch), at the paper's headline 90% sparsity.
GEMM = (1024, 32, 1024)
GPU = "V100"
SPARSITY = 0.9
LAYER = f"gemm-{GEMM[0]}x{GEMM[1]}x{GEMM[2]}"


def make_requests(count: int, *, seed: int = 42) -> list[PredictRequest]:
    """``count`` deterministic single-column (batch-size-1) requests."""
    rng = np.random.default_rng(seed)
    return [
        PredictRequest.from_array(
            LAYER, rng.normal(size=GEMM[2]), request_id=str(index)
        )
        for index in range(count)
    ]


def check_replay_identity(plan, requests, jobs: int) -> dict:
    """Serial vs ``jobs``-way replay of the same stream, byte for byte."""
    service = InferenceService(plan)
    serial = service.replay(requests, jobs=1)
    parallel = service.replay(requests, jobs=jobs)
    mismatches = sum(
        left.output.tobytes() != right.output.tobytes()
        for left, right in zip(serial, parallel, strict=True)
    )
    return {
        "requests": len(requests),
        "jobs": jobs,
        "identical": mismatches == 0,
        "mismatches": mismatches,
    }


def run_live(
    plan,
    requests,
    *,
    workers: int,
    width: int | None,
    fault_plan: FaultPlan | None = None,
) -> dict:
    """Closed-loop live serving of one request stream; returns the metrics."""
    service = InferenceService(
        plan,
        workers=workers,
        width=width,
        max_pending=len(requests) + 1,
        fault_plan=fault_plan,
        backoff_base_s=0.01,
    )
    service.start()
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PoolStompedWarning)
            began = time.perf_counter()
            handles = [service.submit(request) for request in requests]
            for handle in handles:
                handle.result(timeout=600.0)
            elapsed = time.perf_counter() - began
    finally:
        service.stop()
    stats = service.stats.to_dict()
    stats["elapsed_s"] = elapsed
    stats["requests_per_s"] = len(requests) / elapsed
    stats["windows"] = {
        layer: {"width": window.width, "deadline_ms": window.deadline_s * 1e3}
        for layer, window in service.windows.items()
    }
    return stats


def run(*, requests: int, workers: int, jobs: int, smoke: bool) -> dict:
    plan = Autotuner().plan_gemm(GEMM, GPU, SPARSITY)
    stream = make_requests(requests)
    result: dict = {
        "benchmark": "serve",
        "model_version": MODEL_VERSION,
        "config": {
            "gemm": list(GEMM),
            "gpu": GPU,
            "sparsity": SPARSITY,
            "kernel": plan.assignments[0].label,
            "requests": requests,
            "workers": workers,
        },
        "replay_identity": check_replay_identity(plan, stream, jobs),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    if smoke:
        return result
    # Warm the shared runtime once so neither mode pays first-touch prepare.
    InferenceService(plan).start().stop()
    result["serial"] = run_live(plan, stream, workers=workers, width=1)
    result["microbatched"] = run_live(plan, stream, workers=workers, width=None)
    result["speedup"] = (
        result["microbatched"]["requests_per_s"] / result["serial"]["requests_per_s"]
    )
    # The faulted mode: identical micro-batched run, but one worker is
    # killed mid-stream (a deterministic FaultPlan, so the run is
    # reproducible).  The recovery gate: zero lost requests, and enough
    # throughput left to still beat the serial baseline.
    # Batch 1 always exists (any stream of >= 2 batches) and is never the
    # first — the kill lands mid-stream regardless of the planned width.
    faulted_stream = make_requests(requests)
    fault_plan = FaultPlan((FaultSpec(kind="kill", batch_id=1, times=1),))
    result["faulted"] = run_live(
        plan, faulted_stream, workers=workers, width=None, fault_plan=fault_plan
    )
    result["faulted"]["injected"] = [
        {"kind": spec.kind, "batch_id": spec.batch_id, "times": spec.times}
        for spec in fault_plan.specs
    ]
    result["faulted_speedup"] = (
        result["faulted"]["requests_per_s"] / result["serial"]["requests_per_s"]
    )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="fail below this micro-batched vs serial req/s ratio (default 2)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=256,
        help="closed-loop request count per mode (default 256)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes in both live modes (default 2)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="process count of the parallel replay identity check (default 2)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="replay byte-identity only; the throughput gate is skipped",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_serve.json"),
        help="where to write the result JSON (default BENCH_serve.json)",
    )
    args = parser.parse_args(argv)

    result = run(
        requests=args.requests,
        workers=args.workers,
        jobs=args.jobs,
        smoke=args.smoke,
    )
    result["min_speedup"] = args.min_speedup
    args.output.write_text(json.dumps(result, indent=1) + "\n", encoding="utf-8")

    identity = result["replay_identity"]
    print(
        f"replay identity: {identity['requests']} requests, "
        f"1 vs {identity['jobs']} jobs -> "
        f"{'byte-identical' if identity['identical'] else 'MISMATCH'}"
    )
    if not identity["identical"]:
        print(
            f"FAILED: {identity['mismatches']} response(s) differ between "
            "serial and parallel replay",
            file=sys.stderr,
        )
        return 1
    if args.smoke:
        print(f"wrote {args.output}")
        print("OK: serial and parallel replay byte-identical (smoke)")
        return 0

    for mode in ("serial", "microbatched", "faulted"):
        stats = result[mode]
        print(
            f"{mode:13s}: {stats['requests_per_s']:8.1f} req/s  "
            f"p50 {stats['p50_latency_ms']:7.2f} ms  "
            f"p99 {stats['p99_latency_ms']:7.2f} ms  "
            f"mean width {stats['mean_batch_width']:5.1f}"
        )
    print(
        f"speedup      : {result['speedup']:8.2f}x  "
        f"(gate: >= {args.min_speedup}x at {args.workers} workers)"
    )
    print(
        f"faulted      : {result['faulted_speedup']:8.2f}x with one worker "
        f"killed mid-stream (gate: >= {args.min_speedup}x, zero lost)"
    )
    print(f"wrote {args.output}")
    if result["speedup"] < args.min_speedup:
        print(
            f"FAILED: micro-batching is only {result['speedup']:.2f}x the serial "
            f"baseline (gate: {args.min_speedup}x)",
            file=sys.stderr,
        )
        return 1
    faulted = result["faulted"]
    if faulted["retried"] < 1:
        print(
            "FAILED: the injected worker kill never fired (no batch was "
            "retried) — the faulted gate is vacuous",
            file=sys.stderr,
        )
        return 1
    if faulted["served"] != args.requests:
        print(
            f"FAILED: faulted run lost requests: served {faulted['served']} "
            f"of {args.requests}",
            file=sys.stderr,
        )
        return 1
    if result["faulted_speedup"] < args.min_speedup:
        print(
            f"FAILED: with one injected worker kill the service is only "
            f"{result['faulted_speedup']:.2f}x the serial baseline "
            f"(gate: {args.min_speedup}x)",
            file=sys.stderr,
        )
        return 1
    print("OK: micro-batched serving beats the serial baseline by the gated margin")
    print("OK: one injected worker kill recovers with zero lost requests")
    return 0


if __name__ == "__main__":
    sys.exit(main())
