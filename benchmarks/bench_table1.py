"""Table 1: accuracy of pruned proxy models per pattern and sparsity.

The real experiment (WMT / ImageNet scale) is replaced by the proxy protocol
of :mod:`repro.eval.accuracy`; the benchmark runs it at the tiny setting so
the suite stays fast and checks that the protocol produces metrics for every
configuration.  ``python -m repro.eval table1`` runs the fuller version whose
numbers are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.eval.accuracy import AccuracyConfig, PatternSpec, evaluate_model_accuracy

SPECS = [
    PatternSpec("BW, V=32", "blockwise", 32),
    PatternSpec("VW, V=32", "vectorwise", 32),
    PatternSpec("Shfl-BW, V=32", "shflbw", 32),
    PatternSpec("Shfl-BW, V=64", "shflbw", 64),
]
CONFIG = AccuracyConfig(quick=True, tiny=True)


@pytest.fixture(scope="module")
def transformer_result():
    return evaluate_model_accuracy("transformer", (0.80,), SPECS, CONFIG)


def test_table1_transformer(benchmark):
    result = benchmark.pedantic(
        evaluate_model_accuracy,
        args=("transformer", (0.80,), SPECS, CONFIG),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"  dense {result.metric_name}: {result.dense_metric:.2f}")
    for (label, sparsity), value in sorted(result.results.items()):
        print(f"  {label:<16} @ {sparsity:.0%}: {value:.2f}")
    assert len(result.results) == len(SPECS)


def test_table1_gnmt(benchmark):
    result = benchmark.pedantic(
        evaluate_model_accuracy,
        args=("gnmt", (0.80,), SPECS[:3], CONFIG),
        rounds=1,
        iterations=1,
    )
    assert result.metric_name == "BLEU"
    assert all(0.0 <= v <= 100.0 for v in result.results.values())


def test_table1_resnet(benchmark):
    result = benchmark.pedantic(
        evaluate_model_accuracy,
        args=("resnet50", (0.80,), SPECS[1:3], CONFIG),
        rounds=1,
        iterations=1,
    )
    assert result.metric_name.startswith("Top-1")
    assert all(0.0 <= v <= 100.0 for v in result.results.values())


def test_pruned_metrics_do_not_exceed_dense_by_much(transformer_result):
    """Pruning at 80 % should not magically beat the dense model (noise
    tolerance aside) — a sanity check on the protocol."""
    for value in transformer_result.results.values():
        assert value <= transformer_result.dense_metric + 15.0


def test_all_configurations_present(transformer_result):
    labels = {label for (label, _) in transformer_result.results}
    assert labels == {spec.label for spec in SPECS}
