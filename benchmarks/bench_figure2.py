"""Figure 2: accuracy-speedup trade-off for GNMT on V100.

Combines the proxy-GNMT accuracy protocol with the kernel speedups on the
real GNMT layer shapes.  The benchmark runs the tiny accuracy setting; the
fuller curve for EXPERIMENTS.md comes from ``python -m repro.eval figure2``.
"""

from __future__ import annotations

import pytest

from repro.eval.accuracy import AccuracyConfig, PatternSpec
from repro.eval.tradeoff import figure2_sweep

SPECS = [
    PatternSpec("Unstructured", "unstructured"),
    PatternSpec("VW, V=32", "vectorwise", 32),
    PatternSpec("Shfl-BW, V=32", "shflbw", 32),
    PatternSpec("Shfl-BW, V=64", "shflbw", 64),
]
CONFIG = AccuracyConfig(quick=True, tiny=True)


@pytest.fixture(scope="module")
def points():
    return figure2_sweep(sparsities=(0.80,), config=CONFIG, specs=SPECS)


def test_figure2_sweep(benchmark):
    result = benchmark.pedantic(
        figure2_sweep,
        kwargs={"sparsities": (0.80,), "config": CONFIG, "specs": SPECS},
        rounds=1,
        iterations=1,
    )
    print()
    for point in result:
        print(
            f"  {point.label:<16} @ {point.sparsity:.0%}: "
            f"BLEU {point.accuracy:6.2f}  speedup {point.speedup:5.2f}x"
        )
    assert len(result) == len(SPECS)


def test_unstructured_has_no_practical_speedup(points):
    unstructured = [p for p in points if p.label == "Unstructured"]
    assert unstructured and all(p.speedup < 1.0 for p in unstructured)


def test_shflbw_achieves_real_speedup(points):
    shfl = [p for p in points if p.label.startswith("Shfl-BW")]
    assert shfl and all(p.speedup > 1.0 for p in shfl)


def test_larger_v_gives_no_less_speedup(points):
    by_label = {p.label: p for p in points}
    assert by_label["Shfl-BW, V=64"].speedup >= by_label["Shfl-BW, V=32"].speedup * 0.95


def test_shflbw_speedup_close_to_vector_wise(points):
    by_label = {p.label: p for p in points}
    ratio = by_label["Shfl-BW, V=32"].speedup / by_label["VW, V=32"].speedup
    assert 0.9 <= ratio <= 1.1
