"""Ablation: the reduced-sparsity mask in the pattern search (Section 5).

The row-group search clusters the binary mask of an unstructured pruning at a
*reduced* sparsity (non-zero ratio ``beta = beta_factor * alpha``); the paper
reports ``beta = 2 alpha`` works best.  The ablation sweeps ``beta_factor``
and measures the importance retained by the resulting Shfl-BW mask on
weight matrices whose rows cluster into shared supports (the regime the
search is designed for).
"""

from __future__ import annotations

import numpy as np

from repro.core.pruning import search_shflbw_pattern

M, K, V = 128, 256, 16
SPARSITY = 0.75
BETA_FACTORS = (1.0, 1.5, 2.0, 3.0, 4.0)


def clustered_scores(seed: int = 0) -> np.ndarray:
    """Importance scores whose rows fall into a few column-support clusters,
    interleaved across the matrix (so fixed consecutive grouping is bad)."""
    rng = np.random.default_rng(seed)
    num_clusters = 8
    supports = [rng.choice(K, size=K // 3, replace=False) for _ in range(num_clusters)]
    scores = rng.random((M, K)) * 0.05
    for i in range(M):
        scores[i, supports[i % num_clusters]] += rng.random(K // 3)
    return scores


def retained_for(beta_factor: float, seed: int = 0) -> float:
    scores = clustered_scores(seed)
    result = search_shflbw_pattern(
        scores, density=1.0 - SPARSITY, vector_size=V, beta_factor=beta_factor, seed=seed
    )
    return result.retained_score / scores.sum()


def test_beta_ablation(benchmark):
    values = benchmark.pedantic(
        lambda: {beta: retained_for(beta) for beta in BETA_FACTORS}, rounds=1, iterations=1
    )
    print()
    for beta, retained in values.items():
        print(f"  beta = {beta:.1f} x alpha : retained importance {retained * 100:.1f}%")


def test_paper_default_beats_no_reduction():
    """beta = 2 alpha (the paper's choice) should retain at least as much
    importance as clustering the final-sparsity mask directly (beta = alpha)."""
    averaged = {
        beta: np.mean([retained_for(beta, seed) for seed in range(3)]) for beta in (1.0, 2.0)
    }
    assert averaged[2.0] >= averaged[1.0] * 0.995


def test_retained_importance_reasonable():
    for beta in BETA_FACTORS:
        retained = retained_for(beta)
        assert 0.25 < retained <= 1.0
