"""Section 3.2 analysis: flexibility (candidate counting) and computation
efficiency (maximum data reuse), including the paper's M=512 / V=128
``e^700`` example and the ``sqrt(alpha)`` reuse ceiling."""

from __future__ import annotations

import math

import pytest

from repro.core.analysis import (
    compare_patterns,
    log_candidates_blockwise,
    log_candidates_shflbw,
    log_candidates_unstructured,
    log_candidates_vectorwise,
    log_row_shuffle_multiplier,
)
from repro.gpu.arch import get_gpu
from repro.gpu.roofline import max_reuse_dense, max_reuse_unstructured


def test_flexibility_analysis(benchmark):
    result = benchmark(compare_patterns, get_gpu("V100"), 2048, 2048, 0.1, 64)
    print()
    for analysis in result:
        print(
            f"  {analysis.pattern:<14} ln(candidates)={analysis.log_candidates:12.3g}"
            f"  reuse={analysis.max_reuse_flop_per_byte:7.1f} flop/B"
            f"  vs dense={analysis.reuse_vs_dense:.2f}"
        )


def test_row_shuffle_multiplier_paper_example(benchmark):
    value = benchmark(log_row_shuffle_multiplier, 512, 128)
    assert value > 700.0  # Section 3.2.1


def test_candidate_count_ordering():
    m, k, v, density = 2048, 2048, 64, 0.25
    unstructured = log_candidates_unstructured(m, k, density)
    shfl = log_candidates_shflbw(m, k, v, density)
    vw = log_candidates_vectorwise(m, k, v, density)
    bw = log_candidates_blockwise(m, k, v, density)
    assert unstructured > shfl > vw > bw


def test_sqrt_alpha_reuse_ceiling():
    arch = get_gpu("A100")
    dense = max_reuse_dense(arch)
    for alpha in (0.5, 0.25, 0.1):
        assert max_reuse_unstructured(arch, alpha) == pytest.approx(math.sqrt(alpha) * dense)


def test_blockwise_reuse_beats_unstructured_at_dnn_sparsity():
    analyses = {a.pattern: a for a in compare_patterns(get_gpu("V100"), 2048, 2048, 0.1, 64)}
    assert analyses["shflbw"].max_reuse_flop_per_byte > analyses["unstructured"].max_reuse_flop_per_byte
    assert analyses["shflbw"].log_candidates > analyses["vectorwise"].log_candidates
