#!/usr/bin/env python
"""Planned-vs-single-kernel whole-model timings for the autotuner.

For every (model, GPU) cell of the paper grid, tunes a per-layer execution
plan with :class:`repro.tune.Autotuner` and prices it against every
single-kernel whole-model baseline (including the dense baseline) through
the sweep runner.  Two gates:

* *never slower*: the planned whole-model time must not exceed the best
  single-kernel baseline on any cell (the per-layer argmin construction
  guarantees this for analytical plans; the gate catches regressions in the
  plan/eval plumbing).  In ``--measured`` mode the refiner may deliberately
  trade modelled time for measured wall-clock wins, so the gate is reported
  but not enforced there;
* *cache coherence*: re-planning against a warm plan cache must reproduce
  the cold plan exactly (both modes).

Run standalone (after ``pip install -e .``)::

    python benchmarks/bench_autotune.py
    python benchmarks/bench_autotune.py --smoke        # CI subset
    python benchmarks/bench_autotune.py --measured     # measured refinement
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro.eval.runner import SweepRunner
from repro.eval.speedup import PAPER_GPUS
from repro.tune import Autotuner, MeasuredRefiner, compare_with_single_kernels

#: Allowed relative slack on the never-slower gate (float summation only;
#: the argmin construction is exact).
REL_EPS = 1e-9

MODELS = ("transformer", "gnmt", "resnet50")


def run_grid(
    models: tuple[str, ...],
    gpus: tuple[str, ...],
    sparsity: float,
    *,
    measured: bool,
) -> int:
    refiner = MeasuredRefiner(top_k=2, repeats=2) if measured else None
    failures = 0
    print(
        f"Autotuned plan vs best single kernel "
        f"(sparsity {sparsity:.0%}, {'measured' if measured else 'model'} mode)"
    )
    header = (
        f"{'model':<12} {'GPU':<5} {'planned ms':>11} {'best single':>22} "
        f"{'single ms':>10} {'advantage':>9}"
    )
    print(header)
    print("-" * len(header))
    with tempfile.TemporaryDirectory() as plan_dir:
        tuner = Autotuner(cache_dir=plan_dir, refiner=refiner)
        runner = SweepRunner()
        start = time.perf_counter()
        for model in models:
            for gpu in gpus:
                comparison = compare_with_single_kernels(
                    model, gpu, sparsity, tuner=tuner, runner=runner
                )
                ok = comparison.planned_time_s <= comparison.best_single_time_s * (
                    1 + REL_EPS
                )
                # Measured refinement may pick a kernel whose *modelled* time
                # is not the argmin (that is its purpose), so only analytical
                # plans are held to the never-slower bar.
                failures += not ok and not measured
                print(
                    f"{model:<12} {gpu:<5} "
                    f"{comparison.planned_time_s * 1e3:>11.4f} "
                    f"{comparison.best_single_label:>22} "
                    f"{comparison.best_single_time_s * 1e3:>10.4f} "
                    f"{comparison.advantage:>8.4f}x"
                    + (
                        ""
                        if ok
                        else (
                            "  (measured trade-off)"
                            if measured
                            else "  << SLOWER THAN SINGLE KERNEL"
                        )
                    )
                )
                warm = tuner.plan(model, gpu, sparsity)
                if warm != comparison.plan:
                    failures += 1
                    print(f"{model:<12} {gpu:<5}  << WARM PLAN != COLD PLAN")
        elapsed = time.perf_counter() - start
        print(
            f"\n{len(models) * len(gpus)} cells in {elapsed:.2f}s; plan cache: "
            f"{tuner.stats.hits} hits / {tuner.stats.misses} misses"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="one model on one GPU (CI fast path)"
    )
    parser.add_argument(
        "--sparsity", type=float, default=0.75, help="weight sparsity (default 0.75)"
    )
    parser.add_argument(
        "--measured",
        action="store_true",
        help="refine the analytical shortlist by measured functional runs",
    )
    args = parser.parse_args(argv)

    models = MODELS[:1] if args.smoke else MODELS
    gpus = PAPER_GPUS[:1] if args.smoke else PAPER_GPUS
    failures = run_grid(models, gpus, args.sparsity, measured=args.measured)
    if failures:
        print(f"FAILED: {failures} gate violation(s)", file=sys.stderr)
        return 1
    if args.measured:
        print("OK: measured plans produced and reproduced from a warm cache")
    else:
        print("OK: planned whole-model time never exceeded the best single kernel")
    return 0


if __name__ == "__main__":
    sys.exit(main())
