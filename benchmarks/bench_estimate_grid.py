#!/usr/bin/env python
"""Scalar-loop vs batched estimation on the full Figure-6 grid.

The batched estimation engine (``LaunchBatch`` / ``simulate_batch`` /
``SpMMKernel.estimate_grid``) replaces the per-cell scalar loop the sweep
runner used to execute.  This benchmark drives both paths over the complete
Figure 6 grid — 3 models x 3 GPUs x the full kernel line-up x 4 sparsities —
and enforces two gates:

* *equivalence*: the batched executor's records must be identical to the
  scalar executor's, float for float (the engine is built to be bit-exact);
* *speedup*: the batched path must be at least ``--min-speedup`` times
  faster (default 10x) on median-of-``--repeats`` wall times.

The measurements land in ``BENCH_estimate.json`` (override with
``--output``), the first point of the repo's recorded perf trajectory; CI
uploads it as an artifact on every run.

Run standalone (after ``pip install -e .``)::

    python benchmarks/bench_estimate_grid.py
    python benchmarks/bench_estimate_grid.py --smoke          # CI fast subset
    python benchmarks/bench_estimate_grid.py --min-speedup 8  # noisy runners
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.eval.runner import MODEL_VERSION, batched_executor, serial_executor
from repro.eval.speedup import figure6_spec


def run(repeats: int, smoke: bool) -> dict:
    spec = figure6_spec(models=("transformer",)) if smoke else figure6_spec()
    configs = spec.expand()

    scalar_records = serial_executor(configs)
    batched_records = batched_executor(configs)
    mismatches = sum(a != b for a, b in zip(batched_records, scalar_records))

    # Interleave the two paths so machine-load drift hits both sides of each
    # sample pair equally; the gated speedup is the median of the per-pair
    # ratios, which is robust to a slow outlier sample on either side.
    scalar_s: list[float] = []
    batched_s: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        serial_executor(configs)
        mid = time.perf_counter()
        batched_executor(configs)
        end = time.perf_counter()
        scalar_s.append(mid - start)
        batched_s.append(end - mid)
    scalar_med = statistics.median(scalar_s)
    batched_med = statistics.median(batched_s)
    speedup = statistics.median(s / b for s, b in zip(scalar_s, batched_s))
    return {
        "benchmark": "estimate_grid",
        "model_version": MODEL_VERSION,
        "grid": {
            "models": list(spec.models),
            "gpus": list(spec.gpus),
            "sparsities": list(spec.sparsities),
            "kernels": [kernel.display_label for kernel in spec.kernels],
            "configs": len(configs),
        },
        "repeats": repeats,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "scalar_median_s": scalar_med,
        "batched_median_s": batched_med,
        "speedup": speedup,
        "records_identical": mismatches == 0,
        "mismatched_records": mismatches,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="fail below this batched-vs-scalar speedup (default 10)",
    )
    parser.add_argument(
        "--repeats", type=int, default=7, help="timing repeats per path (default 7)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single-model subset: equivalence checked, speedup gate skipped",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_estimate.json"),
        help="where to write the result JSON (default BENCH_estimate.json)",
    )
    args = parser.parse_args(argv)

    result = run(args.repeats, args.smoke)
    result["min_speedup"] = args.min_speedup
    args.output.write_text(json.dumps(result, indent=1) + "\n", encoding="utf-8")

    grid = result["grid"]
    print(
        f"Figure-6 grid: {grid['configs']} configs "
        f"({len(grid['models'])} models x {len(grid['gpus'])} GPUs x "
        f"{len(grid['kernels'])} kernels x {len(grid['sparsities'])} sparsities)"
    )
    print(
        f"scalar loop : {result['scalar_median_s'] * 1e3:8.2f} ms  "
        f"(median of {args.repeats})"
    )
    print(
        f"batched     : {result['batched_median_s'] * 1e3:8.2f} ms  "
        f"(median of {args.repeats})"
    )
    print(
        f"speedup     : {result['speedup']:8.2f}x  "
        f"(median paired ratio; gate: >= {args.min_speedup}x)"
    )
    print(f"records     : {'identical' if result['records_identical'] else 'MISMATCH'}")
    print(f"wrote {args.output}")

    if not result["records_identical"]:
        print(
            f"FAILED: {result['mismatched_records']} record(s) differ between the "
            "batched and scalar paths",
            file=sys.stderr,
        )
        return 1
    if args.smoke:
        print("OK: batched records identical to the scalar loop (smoke subset)")
        return 0
    if result["speedup"] < args.min_speedup:
        print(
            f"FAILED: batched estimation is only {result['speedup']:.2f}x faster "
            f"(gate: {args.min_speedup}x)",
            file=sys.stderr,
        )
        return 1
    print("OK: batched estimation beats the scalar loop by the gated margin")
    return 0


if __name__ == "__main__":
    sys.exit(main())
