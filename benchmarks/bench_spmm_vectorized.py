#!/usr/bin/env python
"""Old-vs-new wall time of the vectorized SpMM engine.

Times the vectorized kernels in :mod:`repro.sparse.spmm` against the seed
loop implementations kept as oracles in :mod:`repro.sparse.spmm_reference`,
asserts the outputs match to ``1e-10``, and (for the headline ``spmm_csr`` /
``spmm_shflbw`` pair on the default 2048 x 2048 @ 10 % density shape) asserts
the vectorized engine is at least ``--min-speedup`` (default 5x) faster.

The default activation width is deliberately small (``--n 4``, the skinny
decode-style regime): that is where the Python-loop overhead of the seed
kernels dominates and where the vectorized engine pays off most.  Steady-state
behaviour is measured (best of ``--reps``), so the memoised stitched panels /
scipy handle caches added in this change are exercised exactly as a repeated
inference workload would hit them.

Run standalone::

    python benchmarks/bench_spmm_vectorized.py
    python benchmarks/bench_spmm_vectorized.py --smoke  # CI

"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass

import numpy as np

from repro.pruning.patterns import UnstructuredPruner, VectorwisePruner
from repro.sparse import spmm_reference as ref
from repro.sparse.convert import (
    dense_to_balanced,
    dense_to_block,
    dense_to_csr,
    dense_to_shflbw,
    dense_to_vector_wise,
)
from repro.sparse.spmm import (
    spmm_balanced,
    spmm_block,
    spmm_csr,
    spmm_shflbw,
    spmm_vector_wise,
)

ATOL = 1e-10


@dataclass
class BenchResult:
    kernel: str
    old_ms: float
    new_ms: float
    max_abs_diff: float
    gated: bool  # whether this row is held to the --min-speedup bar

    @property
    def speedup(self) -> float:
        return self.old_ms / self.new_ms if self.new_ms > 0 else float("inf")


def _best_of(fn, reps: int) -> tuple[float, np.ndarray]:
    """Best wall time (ms) over ``reps`` calls, plus the last output."""
    out = fn()  # warm-up: fills the prepare/panel caches, as steady state does
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1.0e3, out


def bench_pair(name, old_fn, new_fn, reference, reps, gated=True) -> BenchResult:
    old_ms, old_out = _best_of(old_fn, reps)
    new_ms, new_out = _best_of(new_fn, reps)
    diff = float(np.abs(new_out - old_out).max())
    np.testing.assert_allclose(new_out, old_out, atol=ATOL)
    np.testing.assert_allclose(new_out, reference, atol=ATOL)
    return BenchResult(name, old_ms, new_ms, diff, gated)


def run(
    m: int = 2048,
    k: int = 2048,
    n: int = 4,
    density: float = 0.10,
    vector_size: int = 32,
    tile_cols: int = 32,
    reps: int = 7,
    seed: int = 0,
) -> list[BenchResult]:
    rng = np.random.default_rng(seed)
    activations = rng.normal(size=(k, n))
    results: list[BenchResult] = []

    # --- unstructured (CSR) ------------------------------------------------ #
    unstructured = UnstructuredPruner().prune(rng.normal(size=(m, k)), 1.0 - density).weights
    csr = dense_to_csr(unstructured)
    results.append(
        bench_pair(
            "spmm_csr",
            lambda: ref.spmm_csr_loop(csr, activations),
            lambda: spmm_csr(csr, activations),
            unstructured @ activations,
            reps,
        )
    )

    # --- Shfl-BW (vector-wise under a random row shuffle) ------------------ #
    vw_pruned = VectorwisePruner(vector_size=vector_size).prune(
        rng.normal(size=(m, k)), 1.0 - density
    ).weights
    row_indices = rng.permutation(m)
    shuffled = np.zeros_like(vw_pruned)
    shuffled[row_indices, :] = vw_pruned  # original-order matrix
    shfl = dense_to_shflbw(shuffled, vector_size, row_indices)
    results.append(
        bench_pair(
            "spmm_shflbw",
            lambda: ref.spmm_shflbw_loop(shfl, activations, tile_cols=tile_cols),
            lambda: spmm_shflbw(shfl, activations, tile_cols=tile_cols),
            shuffled @ activations,
            reps,
        )
    )

    # --- informational rows (correctness-gated only) ----------------------- #
    vec = dense_to_vector_wise(vw_pruned, vector_size)
    results.append(
        bench_pair(
            "spmm_vector_wise",
            lambda: ref.spmm_vector_wise_loop(vec, activations),
            lambda: spmm_vector_wise(vec, activations),
            vw_pruned @ activations,
            reps,
            gated=False,
        )
    )

    block_pruned = np.kron(
        rng.random((m // vector_size, k // vector_size)) < density,
        np.ones((vector_size, vector_size)),
    ) * rng.normal(size=(m, k))
    block = dense_to_block(block_pruned, vector_size)
    results.append(
        bench_pair(
            "spmm_block",
            lambda: ref.spmm_block_loop(block, activations),
            lambda: spmm_block(block, activations),
            block_pruned @ activations,
            reps,
            gated=False,
        )
    )

    balanced = dense_to_balanced(rng.normal(size=(m, k)))
    results.append(
        bench_pair(
            "spmm_balanced",
            lambda: ref.spmm_balanced_loop(balanced, activations),
            lambda: spmm_balanced(balanced, activations),
            balanced.to_dense() @ activations,
            reps,
            gated=False,
        )
    )
    return results


def report(results: list[BenchResult]) -> str:
    lines = [
        f"{'kernel':<18} {'loop (ms)':>10} {'vectorized (ms)':>16} {'speedup':>8} {'max|diff|':>10}",
        "-" * 68,
    ]
    for r in results:
        lines.append(
            f"{r.kernel:<18} {r.old_ms:>10.3f} {r.new_ms:>16.3f} "
            f"{r.speedup:>7.1f}x {r.max_abs_diff:>10.2e}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--m", type=int, default=2048)
    parser.add_argument("--k", type=int, default=2048)
    parser.add_argument("--n", type=int, default=4, help="activation columns (batch)")
    parser.add_argument("--density", type=float, default=0.10)
    parser.add_argument("--vector-size", type=int, default=32)
    parser.add_argument("--tile-cols", type=int, default=32)
    parser.add_argument("--reps", type=int, default=7)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required vectorized-over-loop speedup for spmm_csr / spmm_shflbw",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small problem, correctness asserts only (for CI runners)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.m = args.k = 256
        args.n = 8
        args.reps = 3
        args.min_speedup = 0.0

    results = run(
        m=args.m,
        k=args.k,
        n=args.n,
        density=args.density,
        vector_size=args.vector_size,
        tile_cols=args.tile_cols,
        reps=args.reps,
        seed=args.seed,
    )
    print(
        f"SpMM old-vs-new wall time  (M={args.m} K={args.k} N={args.n} "
        f"density={args.density:.0%} V={args.vector_size} T_K={args.tile_cols}, "
        f"best of {args.reps})"
    )
    print(report(results))

    failures = [
        r for r in results if r.gated and args.min_speedup > 0 and r.speedup < args.min_speedup
    ]
    if failures:
        for r in failures:
            print(
                f"FAIL: {r.kernel} speedup {r.speedup:.1f}x is below the "
                f"{args.min_speedup:.1f}x bar",
                file=sys.stderr,
            )
        return 1
    print("all outputs match to 1e-10" + ("" if args.min_speedup <= 0 else "; speedup bar met"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
