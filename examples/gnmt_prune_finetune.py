"""Prune-and-fine-tune a GNMT-style proxy with different sparsity patterns
(Table 1 / Figure 2 style, at example scale).

Trains the proxy LSTM seq2seq model on the synthetic translation task, prunes
its weight matrices to 80 % sparsity with block-wise, vector-wise and Shfl-BW
patterns, fine-tunes each pruned model with the mask held fixed, and reports
BLEU next to the kernel speedup on the real GNMT layer shapes.

Run with::

    python examples/gnmt_prune_finetune.py
"""

from __future__ import annotations

from repro.eval.speedup import model_speedup
from repro.gpu import get_gpu
from repro.kernels import make_kernel
from repro.models import GNMTConfig, GNMTProxy, gnmt_layers
from repro.nn import SyntheticTranslationTask, TrainConfig, build_masks, train_model
from repro.pruning import make_pruner

SPARSITY = 0.80
#: (label, pruner pattern, proxy vector size, kernel name, kernel vector size)
CONFIGS = [
    ("Unstructured", "unstructured", None, "sputnik", None),
    ("BW, V=32", "blockwise", 8, "cusparse-bsr", 32),
    ("VW, V=32", "vectorwise", 8, "vector-wise", 32),
    ("Shfl-BW, V=32", "shflbw", 8, "shfl-bw", 32),
    ("Shfl-BW, V=64", "shflbw", 16, "shfl-bw", 64),
]


def main() -> None:
    task = SyntheticTranslationTask(seed=0)
    model = GNMTProxy(GNMTConfig(vocab_size=task.vocab_size))

    print("training the dense GNMT proxy ...")
    dense_result = train_model(model, task, TrainConfig(epochs=6, learning_rate=3e-3, batch_size=64))
    dense_state = model.state_dict()
    print(f"dense proxy BLEU: {dense_result.final_metric:.2f}\n")

    arch = get_gpu("V100")
    layers = gnmt_layers()
    dense_kernel = make_kernel("dense")

    print(f"{'pattern':<16}{'BLEU':>8}{'drop':>8}{'kernel speedup (V100)':>24}")
    for label, pattern, proxy_v, kernel_name, kernel_v in CONFIGS:
        model.load_state_dict(dense_state)
        kwargs = {} if proxy_v is None else (
            {"block_size": proxy_v} if pattern == "blockwise" else {"vector_size": proxy_v}
        )
        pruner = make_pruner(pattern, **kwargs)
        masks, _ = build_masks(model, pruner, SPARSITY)
        finetuned = train_model(
            model, task, TrainConfig(epochs=3, learning_rate=1.5e-3, batch_size=64), masks=masks
        )
        kernel_kwargs = {} if kernel_v is None else (
            {"block_size": kernel_v} if kernel_name == "cusparse-bsr" else {"vector_size": kernel_v}
        )
        kernel = make_kernel(kernel_name, **kernel_kwargs)
        point = model_speedup(kernel, dense_kernel, arch, layers, SPARSITY)
        speedup = "-" if point is None else f"{point.speedup:.2f}x"
        drop = dense_result.final_metric - finetuned.final_metric
        print(f"{label:<16}{finetuned.final_metric:>8.2f}{drop:>8.2f}{speedup:>24}")


if __name__ == "__main__":
    main()
