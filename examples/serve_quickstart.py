"""Serving quickstart: autotune a plan for a decode-shaped GEMM, stand up
the micro-batching inference service on it, and serve a burst of
single-request traffic — live (coalesced up to the per-layer deadline) and
as a deterministic replay whose outputs are byte-identical at any worker
count.

Run with::

    python examples/serve_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.serve import InferenceService, PredictRequest
from repro.tune import Autotuner

GEMM = (512, 32, 512)  # M x N x K: a skinny-activation decode-style layer
LAYER = f"gemm-{GEMM[0]}x{GEMM[1]}x{GEMM[2]}"


def main() -> None:
    # 1. Plan the layer: the autotuner scores the full kernel line-up with
    #    the analytical timing model and assigns the winner.
    plan = Autotuner().plan_gemm(GEMM, "V100", sparsity=0.9)
    assignment = plan.assignments[0]
    print(f"plan: {LAYER} -> {assignment.label} "
          f"(modelled {assignment.time_s * 1e6:.1f} us/batch on V100)")

    # 2. A burst of 48 single-column requests (batch size 1 each).
    rng = np.random.default_rng(0)
    requests = [
        PredictRequest.from_array(LAYER, rng.normal(size=GEMM[2]), request_id=str(i))
        for i in range(48)
    ]

    # 3. Live serving: the micro-batcher coalesces queued requests up to
    #    the width the timing model predicts is throughput-optimal for
    #    this layer, within a calibrated latency deadline.
    with InferenceService(plan, workers=2, max_pending=64) as service:
        window = service.windows[LAYER]
        print(f"micro-batch window: width {window.width}, "
              f"deadline {window.deadline_s * 1e3:.1f} ms")
        handles = [service.submit(request) for request in requests]
        responses = [handle.result(timeout=60.0) for handle in handles]
    stats = service.stats
    print(f"served {stats.served} requests in {stats.batches} batches "
          f"(mean width {stats.mean_batch_width:.1f}), "
          f"p50 {stats.percentile_latency_s(50) * 1e3:.1f} ms, "
          f"p99 {stats.percentile_latency_s(99) * 1e3:.1f} ms")

    # 4. Replay: the same stream through the cached cell executor.  Batch
    #    composition is deterministic there, so serial and process-parallel
    #    replays are byte-identical.  Live serving coalesces by wall-clock
    #    arrival instead, so its batch shapes (and hence float rounding)
    #    may differ — live outputs match replay numerically, not bytewise.
    serial = service.replay(requests, jobs=1)
    parallel = service.replay(requests, jobs=2)
    identical = all(
        left.output.tobytes() == right.output.tobytes()
        for left, right in zip(serial, parallel, strict=True)
    )
    live_close = all(
        np.allclose(live.output, replayed.output)
        for live, replayed in zip(responses, serial, strict=True)
    )
    print(f"replay serial == replay 2-way parallel (bytes): {identical}")
    print(f"live outputs == replay outputs (numeric):       {live_close}")


if __name__ == "__main__":
    main()
