"""Kernel speedups on the real Transformer layer shapes (Figure 6 style).

Sweeps the paper's sparsity grid and vector sizes on the computation-intensive
GEMM layers of the Transformer, for every kernel in the paper's line-up, on
V100 / T4 / A100.

Run with::

    python examples/transformer_kernel_speedup.py
"""

from __future__ import annotations

from repro.eval.speedup import PAPER_SPARSITIES, headline_speedups, model_speedup
from repro.gpu import get_gpu
from repro.kernels import make_kernel, paper_baselines
from repro.models import transformer_layers


def main() -> None:
    layers = transformer_layers(tokens=256)
    dense = make_kernel("dense")
    lineup = paper_baselines(vector_sizes=(32, 64))

    for gpu in ("V100", "T4", "A100"):
        arch = get_gpu(gpu)
        print(f"\n=== Transformer GEMM layers on {gpu} (speedup over dense) ===")
        header = f"{'kernel':<26}" + "".join(f"{s:>9.0%}" for s in PAPER_SPARSITIES)
        print(header)
        for label, kernel in lineup.items():
            if label == "Dense (tensor-core)":
                continue
            supported = getattr(kernel, "supported_archs", None)
            cells = []
            for sparsity in PAPER_SPARSITIES:
                if supported is not None and arch.name not in supported:
                    cells.append(f"{'-':>9}")
                    continue
                point = model_speedup(kernel, dense, arch, layers, sparsity)
                cells.append(f"{'-':>9}" if point is None else f"{point.speedup:>8.2f}x")
            print(f"{label:<26}" + "".join(cells))

    print("\n=== Section 6.2 headline (Shfl-BW V=64 at 75% sparsity) ===")
    paper = {"V100": 1.81, "T4": 4.18, "A100": 1.90}
    for gpu, value in headline_speedups().items():
        print(f"  {gpu:>5}: measured {value:.2f}x   (paper {paper[gpu]:.2f}x)")


if __name__ == "__main__":
    main()
