"""Quickstart: prune a weight matrix to Shfl-BW, execute the sparse kernel,
and estimate the speedup the GPU kernel would achieve over the dense
baseline on V100 / T4 / A100.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import prune_shflbw
from repro.gpu import get_gpu
from repro.kernels import GEMMShape, make_kernel


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. A "layer weight" and an activation batch (M x K times K x N).
    m, k, n = 1024, 1024, 256
    weight = rng.normal(size=(m, k))
    activations = rng.normal(size=(k, n))

    # 2. Prune to 75 % Shfl-BW sparsity with vector size V = 64.
    #    The search returns the witness row permutation used by the kernel's
    #    reordered write-back.
    sparsity, vector_size = 0.75, 64
    pruned, search = prune_shflbw(weight, sparsity=sparsity, vector_size=vector_size)
    print(f"pruned to {search.density:.0%} density, "
          f"retained {search.retained_fraction:.1%} of the weight magnitude")

    # 3. Execute the Shfl-BW SpMM functionally and check it against dense.
    kernel = make_kernel("shfl-bw", vector_size=vector_size)
    prepared = kernel.prepare(pruned, row_indices=search.row_indices)
    sparse_out = kernel.run(prepared, activations)
    max_err = np.abs(sparse_out - pruned @ activations).max()
    print(f"functional SpMM matches dense reference (max abs error {max_err:.2e})")

    # 4. Estimate the GPU execution time against the dense tensor-core GEMM.
    shape = GEMMShape(m=m, n=n, k=k)
    dense = make_kernel("dense")
    print(f"\nestimated kernel time for GEMM {shape} at {sparsity:.0%} sparsity:")
    for gpu in ("V100", "T4", "A100"):
        arch = get_gpu(gpu)
        dense_time = dense.estimate(arch, shape, 1.0)
        sparse_time = kernel.estimate(arch, shape, 1.0 - sparsity)
        print(
            f"  {gpu:>5}: dense {dense_time.total_time_s * 1e6:7.1f} us   "
            f"Shfl-BW {sparse_time.total_time_s * 1e6:7.1f} us   "
            f"speedup {sparse_time.speedup_over(dense_time):.2f}x"
        )


if __name__ == "__main__":
    main()
