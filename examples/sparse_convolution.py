"""Shfl-BW sparse convolution on ResNet50-style layers (Section 4.1).

Shows the implicit-GEMM path end to end: prune a convolution weight (in its
GEMM layout) to Shfl-BW sparsity, run the sparse convolution functionally
against the dense reference, and estimate the speedup of every ResNet50
bottleneck convolution at 75 % and 85 % sparsity.

Run with::

    python examples/sparse_convolution.py
"""

from __future__ import annotations

import numpy as np

from repro.core import prune_shflbw
from repro.gpu import get_gpu
from repro.kernels import make_kernel
from repro.models import resnet50_layers
from repro.sparse import Conv2dSpec, conv2d_dense, weight_to_gemm


def functional_demo() -> None:
    """Correctness of the sparse convolution on a small layer."""
    rng = np.random.default_rng(0)
    spec = Conv2dSpec(in_channels=16, out_channels=32, kernel_size=3, padding=1)
    inputs = rng.normal(size=(2, 16, 14, 14))
    weight = rng.normal(size=(32, 16, 3, 3))

    gemm_weight = weight_to_gemm(weight)
    pruned, search = prune_shflbw(gemm_weight, sparsity=0.75, vector_size=8)

    kernel = make_kernel("shfl-bw-conv", vector_size=8)
    sparse_out = kernel.conv_matmul(
        pruned.reshape(weight.shape), inputs, spec, row_indices=search.row_indices
    )
    dense_out = conv2d_dense(inputs, pruned.reshape(weight.shape), spec)
    err = np.abs(sparse_out - dense_out).max()
    print(f"sparse implicit-GEMM convolution matches dense (max abs error {err:.2e})")


def speedup_sweep() -> None:
    """Modelled speedups for the real ResNet50 convolution layers."""
    arch = get_gpu("A100")
    dense = make_kernel("dense")
    kernel = make_kernel("shfl-bw", vector_size=64)

    print(f"\nResNet50 convolutions on {arch.name} (Shfl-BW V=64, speedup over cuDNN-like dense):")
    print(f"{'layer':<14}{'GEMM shape':>22}{'75% sparsity':>14}{'85% sparsity':>14}")
    for layer in resnet50_layers(batch=32):
        row = f"{layer.name:<14}{str(layer.gemm):>22}"
        for sparsity in (0.75, 0.85):
            dense_t = dense.estimate(arch, layer.gemm, 1.0)
            sparse_t = kernel.estimate(arch, layer.gemm, 1.0 - sparsity)
            row += f"{sparse_t.speedup_over(dense_t):>13.2f}x"
        print(row)


if __name__ == "__main__":
    functional_demo()
    speedup_sweep()
